// Package nrp is a from-scratch Go implementation of Node-Reweighted
// PageRank (NRP), the homogeneous network embedding method of Yang et al.,
// "Homogeneous Network Embedding for Massive Graphs via Reweighted
// Personalized PageRank" (PVLDB 13(5), 2020).
//
// NRP builds a forward and a backward embedding vector per node such that
// the inner product X_u·Y_vᵀ approximates a degree-reweighted personalized
// PageRank proximity →w_u·π(u,v)·←w_v. It runs in O(k(m+kn)·log n) time and
// O(m+nk) space, and handles both directed and undirected graphs.
//
// Basic usage:
//
//	g, err := nrp.LoadGraph("graph.txt", true)
//	emb, err := nrp.Embed(g, nrp.DefaultOptions())
//	score := emb.Score(u, v) // directed proximity of (u → v)
//
// The packages under internal/ implement the substrates (sparse linear
// algebra, randomized block-Krylov SVD, PPR computation, evaluation
// protocols, baselines and the experiment harness); this package is the
// stable public surface.
package nrp

import (
	"fmt"
	"io"
	"os"

	"github.com/nrp-embed/nrp/internal/core"
	"github.com/nrp-embed/nrp/internal/graph"
	"github.com/nrp-embed/nrp/internal/matrix"
)

// Graph is a node-indexed graph with CSR adjacency. Construct with
// NewGraph, ReadGraph or LoadGraph, or generate with the generators in this
// package.
type Graph = graph.Graph

// Edge is a (source, target) node-id pair.
type Edge = graph.Edge

// Options configure embedding construction; see DefaultOptions for the
// paper's settings.
type Options = core.Options

// Embedding holds per-node forward/backward vectors; see Score, Features,
// Save.
type Embedding = core.Embedding

// DefaultOptions returns the paper's parameter settings: k=128, α=0.15,
// ℓ₁=20, ℓ₂=10, ε=0.2, λ=10.
func DefaultOptions() Options { return core.DefaultOptions() }

// Embed computes NRP embeddings (Algorithm 3 of the paper): ApproxPPR
// factorization followed by degree-targeted node reweighting.
func Embed(g *Graph, opt Options) (*Embedding, error) { return core.NRP(g, opt) }

// EmbedPPR computes the ApproxPPR baseline embeddings (Algorithm 1): the
// personalized-PageRank factorization without node reweighting.
func EmbedPPR(g *Graph, opt Options) (*Embedding, error) { return core.ApproxPPR(g, opt) }

// LearnWeights exposes the reweighting phase on fixed embeddings, returning
// the forward and backward node weights of Eq. (5)/(6).
func LearnWeights(g *Graph, emb *Embedding, opt Options) (fw, bw []float64, err error) {
	return core.LearnWeights(g, emb, opt)
}

// NewGraph builds a graph from an edge list over n nodes. Undirected edges
// are symmetrized; self-loops and duplicates are dropped.
func NewGraph(n int, edges []Edge, directed bool) (*Graph, error) {
	return graph.New(n, edges, directed)
}

// ReadGraph parses a whitespace-separated edge list ("u v" per line, '#'
// comments) from r.
func ReadGraph(r io.Reader, directed bool) (*Graph, error) {
	return graph.ReadEdgeList(r, directed, 0)
}

// LoadGraph reads an edge-list file from disk.
func LoadGraph(path string, directed bool) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("nrp: opening graph: %w", err)
	}
	defer f.Close()
	return ReadGraph(f, directed)
}

// WriteGraph writes g as an edge list readable by ReadGraph.
func WriteGraph(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// LoadEmbedding reads an embedding written by Embedding.Save.
func LoadEmbedding(r io.Reader) (*Embedding, error) { return core.Load(r) }

// GenErdosRenyi generates a uniform random graph with exactly m edges.
func GenErdosRenyi(n, m int, directed bool, seed int64) (*Graph, error) {
	return graph.GenErdosRenyi(n, m, directed, seed)
}

// SBMConfig parameterizes the labeled, degree-skewed stochastic-block-model
// generator; see GenSBM.
type SBMConfig = graph.SBMConfig

// GenSBM generates a labeled community graph with heavy-tailed degrees,
// useful for trying the embedding pipeline end to end without external
// data.
func GenSBM(cfg SBMConfig) (*Graph, error) { return graph.GenSBM(cfg) }

// AttributedOptions configure the attributed-graph extension; see
// EmbedAttributed.
type AttributedOptions = core.AttributedOptions

// AttributedEmbedding couples topology embeddings with PPR-smoothed node
// attributes.
type AttributedEmbedding = core.AttributedEmbedding

// DefaultAttributedOptions returns the default attributed-graph settings
// (the paper's parameters plus β = 0.3 attribute weight).
func DefaultAttributedOptions() AttributedOptions { return core.DefaultAttributedOptions() }

// EmbedAttributed implements the paper's stated future work: NRP on the
// topology fused with node attributes smoothed through the same truncated
// personalized-PageRank operator. attrs holds one row per node.
func EmbedAttributed(g *Graph, attrs [][]float64, opt AttributedOptions) (*AttributedEmbedding, error) {
	return core.NRPAttributed(g, matrix.NewDenseFromRows(attrs), opt)
}

// GenAttributes synthesizes label-correlated node attributes with Gaussian
// noise, for experimenting with EmbedAttributed.
func GenAttributes(g *Graph, dim int, noise float64, seed int64) ([][]float64, error) {
	return graph.GenAttributes(g, dim, noise, seed)
}
