package nrp_test

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"github.com/nrp-embed/nrp"
)

// ExampleBuildIndex_hnsw builds the sublinear ANN backend: a
// deterministic HNSW graph with an int8 coarse stage, whose norm-seeded
// beam scans a fraction of the candidates per query. The snapshot
// round-trip reloads the graph without rebuilding, overriding the
// serving-time beam width.
func ExampleBuildIndex_hnsw() {
	ctx := context.Background()
	g, err := nrp.GenSBM(nrp.SBMConfig{N: 400, M: 2400, Communities: 4, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	opt := nrp.DefaultOptions()
	opt.Dim = 16
	emb, _, err := nrp.EmbedCtx(ctx, g, opt)
	if err != nil {
		log.Fatal(err)
	}

	// Build: beam search over an HNSW graph instead of a scan. In-graph
	// scores use the fused int8 kernel and beam survivors are re-scored
	// exactly; each query's beam is pre-seeded with the 64 highest-norm
	// rows, so a narrow beam only recovers the query-specific tail.
	s, err := nrp.BuildIndex(emb,
		nrp.WithBackend(nrp.BackendHNSW),
		nrp.WithHNSWQuantized(true),
		nrp.WithEfSearch(24),
		nrp.WithHNSWSeedRows(64))
	if err != nil {
		log.Fatal(err)
	}

	// The approximate backend's contract: high recall against the exact
	// scan at sublinear per-query work.
	exact := nrp.NewIndex(emb)
	const k, queries = 5, 20
	hits, scanned := 0, 0
	for u := 0; u < queries; u++ {
		want, err := exact.TopK(ctx, u, k)
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.TopKMany(ctx, []int{u}, k)
		if err != nil {
			log.Fatal(err)
		}
		in := make(map[int]bool, k)
		for _, nb := range want {
			in[nb.Node] = true
		}
		for _, nb := range res[0].Neighbors {
			if in[nb.Node] {
				hits++
			}
		}
		if res[0].Stats.Scanned > scanned {
			scanned = res[0].Stats.Scanned
		}
	}
	fmt.Printf("recall@%d over %d queries: %.2f\n", k, queries, float64(hits)/float64(k*queries))
	fmt.Printf("sublinear: max %d of %d candidates scored\n", scanned, s.N())

	// Snapshot: the graph is persisted — the reload binds it without
	// rebuilding, and serving knobs may be overridden at load time.
	var snap bytes.Buffer
	if err := nrp.SaveIndex(&snap, s); err != nil {
		log.Fatal(err)
	}
	loaded, err := nrp.LoadIndex(&snap, nrp.WithEfSearch(48))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded hnsw index over %d nodes\n", loaded.N())
	// Output:
	// recall@5 over 20 queries: 1.00
	// sublinear: max 262 of 400 candidates scored
	// reloaded hnsw index over 400 nodes
}
