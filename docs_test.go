package nrp

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestDocsLinks walks every markdown file in the repository and checks
// that relative links resolve: the target file must exist, and when the
// link carries a #fragment, the target must contain a heading that
// slugs to it (GitHub's anchor rule: lowercase, drop everything that is
// not a letter, digit, space or hyphen, then spaces to hyphens). The
// docs under docs/ cross-link each other and the README heavily; this
// keeps a rename or a heading edit from silently breaking them.
func TestDocsLinks(t *testing.T) {
	var files []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".md") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files found")
	}

	anchors := make(map[string]map[string]bool, len(files))
	contents := make(map[string][]byte, len(files))
	for _, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		contents[f] = raw
		anchors[f] = headingAnchors(string(raw))
	}

	linkRe := regexp.MustCompile(`\]\(([^()\s]+)\)`)
	for _, f := range files {
		for _, m := range linkRe.FindAllStringSubmatch(string(contents[f]), -1) {
			link := m[1]
			if strings.Contains(link, "://") || strings.HasPrefix(link, "mailto:") {
				continue
			}
			target, frag, _ := strings.Cut(link, "#")
			resolved := f
			if target != "" {
				resolved = filepath.Join(filepath.Dir(f), target)
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s: link %q: target does not exist", f, link)
					continue
				}
			}
			if frag == "" {
				continue
			}
			set, ok := anchors[resolved]
			if !ok {
				// Fragment into a non-markdown file (e.g. a source
				// file); existence is all we can check.
				continue
			}
			if !set[frag] {
				t.Errorf("%s: link %q: no heading in %s slugs to #%s", f, link, resolved, frag)
			}
		}
	}
}

// headingAnchors returns the set of GitHub anchor slugs for a markdown
// document's headings. Fenced code blocks are skipped so a commented
// shell line starting with # is not mistaken for a heading.
func headingAnchors(doc string) map[string]bool {
	slugs := make(map[string]bool)
	inFence := false
	for _, line := range strings.Split(doc, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(trimmed, "#") {
			continue
		}
		text := strings.TrimLeft(trimmed, "#")
		if text == "" || !strings.HasPrefix(text, " ") {
			continue
		}
		slug := slugify(strings.TrimSpace(text))
		// Duplicate headings get -1, -2, ... suffixes on GitHub; links
		// here only ever point at the first occurrence.
		if !slugs[slug] {
			slugs[slug] = true
		}
	}
	return slugs
}

var nonSlug = regexp.MustCompile(`[^\p{L}\p{N} \-]`)

func slugify(heading string) string {
	s := strings.ToLower(heading)
	s = strings.ReplaceAll(s, "`", "")
	s = nonSlug.ReplaceAllString(s, "")
	return strings.ReplaceAll(s, " ", "-")
}
