package nrp

import (
	"context"
	"fmt"
	"io"
	"os"

	"github.com/nrp-embed/nrp/internal/fora"
	"github.com/nrp-embed/nrp/internal/gio"
	"github.com/nrp-embed/nrp/internal/par"
)

// Online seed-set PPR queries (the FORA family, internal/fora): forward
// push to an adaptive residual threshold, then alias-sampled Monte Carlo
// walks, answering arbitrary seed sets on the live graph with an (ε, δ)
// relative-error guarantee. This is the serving-side complement to the
// batch embedding pipeline: embeddings answer "similar to u" by inner
// product, PPR queries answer "relevant to this seed set" exactly on the
// current topology.

// Typed sentinels for PPR query validation; internal/serve maps them to
// HTTP 400 alongside ErrInvalidK and ErrNodeOutOfRange.
var (
	// ErrInvalidAlpha is returned when a PPR alpha is outside (0,1).
	ErrInvalidAlpha = fora.ErrInvalidAlpha
	// ErrInvalidEpsilon is returned when a PPR epsilon is not positive.
	ErrInvalidEpsilon = fora.ErrInvalidEpsilon
	// ErrEmptySeedSet is returned when a PPR query has no seeds.
	ErrEmptySeedSet = fora.ErrEmptySeedSet
)

// WalkIndex is the FORA+ acceleration structure: precomputed walk
// endpoints that let a PPR engine answer the walk phase with array reads
// instead of graph traversals. Build with BuildWalkIndex, persist inside
// NRPG snapshots with SaveGraphIndexed, and attach to an engine with
// WithWalkIndex.
type WalkIndex = fora.WalkIndex

// PPRStats describes how one PPR query was answered (push threshold,
// residual, walk count, per-phase time).
type PPRStats = fora.Stats

// PPRResult is a ranked PPR answer: the top-k nodes by estimated π_S,
// descending, plus query stats.
type PPRResult struct {
	Scores []Neighbor
	Stats  PPRStats
}

type pprConfig struct {
	params  fora.Params
	threads int
	index   *WalkIndex
}

// PPROption configures a PPR engine or a one-shot PPR call; see
// WithAlpha, WithEpsilon, WithWalkIndex, WithPPRSeed and WithThreads.
type PPROption interface{ applyPPR(*pprConfig) }

type pprOptionFunc func(*pprConfig)

func (f pprOptionFunc) applyPPR(c *pprConfig) { f(c) }

// applyPPR implements PPROption, so one WithThreads value configures the
// embedding pipeline, index builds and PPR engines alike.
func (t ThreadsOption) applyPPR(c *pprConfig) { c.threads = int(t) }

// WithAlpha sets the walk termination probability α of Eq. (1) (default
// 0.15, the paper's setting). Values outside (0,1) fail with
// ErrInvalidAlpha at validation time.
func WithAlpha(alpha float64) PPROption {
	return pprOptionFunc(func(c *pprConfig) { c.params.Alpha = alpha })
}

// WithEpsilon sets the relative error bound ε of the (ε, δ) guarantee
// (default 0.5). Smaller ε means more walks and tighter estimates;
// non-positive values fail with ErrInvalidEpsilon.
func WithEpsilon(eps float64) PPROption {
	return pprOptionFunc(func(c *pprConfig) { c.params.Epsilon = eps })
}

// WithPPRDelta sets δ, the PPR value down to which the relative-error
// guarantee applies (default 1/n). Raising it makes queries cheaper while
// still guaranteeing the head of the ranking.
func WithPPRDelta(delta float64) PPROption {
	return pprOptionFunc(func(c *pprConfig) { c.params.Delta = delta })
}

// WithPPRFailureProb sets the per-query failure probability of the
// guarantee (default 1/n).
func WithPPRFailureProb(p float64) PPROption {
	return pprOptionFunc(func(c *pprConfig) { c.params.PFail = p })
}

// WithPPRSeed seeds the walk RNG streams (default 1). Queries are
// deterministic for a fixed seed and thread count.
func WithPPRSeed(seed int64) PPROption {
	return pprOptionFunc(func(c *pprConfig) { c.params.Seed = seed })
}

// WithWalkIndex attaches a FORA+ walk index: the walk phase then samples
// precomputed endpoints instead of traversing the graph. The index must
// match the graph's node count; queries whose α differs from the index's
// fall back to live walks.
func WithWalkIndex(wi *WalkIndex) PPROption {
	return pprOptionFunc(func(c *pprConfig) { c.index = wi })
}

// PPREngine answers online seed-set PPR queries. It is safe for
// concurrent use and reuses per-query workspaces through a sync.Pool, so
// steady-state queries allocate O(k) rather than O(n).
type PPREngine struct {
	eng *fora.Engine
}

// NewPPREngine builds a PPR query engine over g. Options are validated
// here: ErrInvalidAlpha and ErrInvalidEpsilon surface before any query
// runs.
func NewPPREngine(g *Graph, opts ...PPROption) (*PPREngine, error) {
	var c pprConfig
	for _, o := range opts {
		o.applyPPR(&c)
	}
	eng, err := fora.NewEngine(g, par.New(c.threads), c.index, c.params)
	if err != nil {
		return nil, fmt.Errorf("nrp: invalid PPR parameters: %w", err)
	}
	return &PPREngine{eng: eng}, nil
}

// PPRQuery is one online seed-set PPR request.
type PPRQuery struct {
	// Seeds is the non-empty seed set; duplicates are deduped. The
	// estimated vector is π_S = (1/|S|)·Σ_{s∈S} π(s,·).
	Seeds []int
	// K is the number of top results to return.
	K int
	// Alpha and Epsilon, when nonzero, override the engine defaults for
	// this query only.
	Alpha, Epsilon float64
	// Graph, when non-nil, answers the query on that snapshot instead of
	// the engine's boot graph — the live-serving path passes the current
	// RCU snapshot here so queries see applied edge updates. Node count
	// must match the boot graph.
	Graph *Graph
}

// Query answers q with the engine's (ε, δ) relative-error guarantee.
// Validation errors wrap the typed sentinels: ErrEmptySeedSet,
// ErrNodeOutOfRange, ErrInvalidK, ErrInvalidAlpha, ErrInvalidEpsilon.
func (pe *PPREngine) Query(ctx context.Context, q PPRQuery) (*PPRResult, error) {
	n := pe.eng.Graph().N
	if len(q.Seeds) == 0 {
		return nil, fmt.Errorf("nrp: PPR query: %w", ErrEmptySeedSet)
	}
	seeds := make([]int32, len(q.Seeds))
	for i, s := range q.Seeds {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("nrp: PPR seed %d out of range [0,%d): %w", s, n, ErrNodeOutOfRange)
		}
		seeds[i] = int32(s)
	}
	if q.K <= 0 {
		return nil, fmt.Errorf("nrp: PPR k=%d: %w", q.K, ErrInvalidK)
	}
	res, err := pe.eng.Query(ctx, fora.Query{
		Seeds:   seeds,
		K:       q.K,
		Alpha:   q.Alpha,
		Epsilon: q.Epsilon,
		Graph:   q.Graph,
	})
	if err != nil {
		return nil, fmt.Errorf("nrp: PPR query: %w", err)
	}
	out := &PPRResult{Scores: make([]Neighbor, len(res.Scores)), Stats: res.Stats}
	for i, s := range res.Scores {
		out.Scores[i] = Neighbor{Node: int(s.Node), Score: s.Score}
	}
	return out, nil
}

// PPR is the convenience form of Query: top-k PPR of a seed set with the
// engine's default parameters.
func (pe *PPREngine) PPR(ctx context.Context, seeds []int, k int) (*PPRResult, error) {
	return pe.Query(ctx, PPRQuery{Seeds: seeds, K: k})
}

// WorkspaceBuilds reports how many O(n) query workspaces the engine has
// constructed; steady sequential traffic holds this at 1 (sync.Pool
// reuse).
func (pe *PPREngine) WorkspaceBuilds() int64 { return pe.eng.WorkspaceBuilds() }

// PPRCounters are a PPR engine's cumulative work counters — workspace
// builds, Monte Carlo walks, and the walk-index maintenance tallies —
// exported on /metrics by the serving stack.
type PPRCounters = fora.EngineCounters

// PPRWalkIndexCounters are the walk-index maintenance counters nested in
// PPRCounters (hits, stale walks, invalidations, repairs).
type PPRWalkIndexCounters = fora.WalkIndexCounters

// Counters returns a snapshot of the engine's work counters. Safe for
// concurrent use with queries.
func (pe *PPREngine) Counters() PPRCounters { return pe.eng.Counters() }

// Index returns the engine's attached walk index, nil if none. Enabling
// maintenance on it and registering it as a DynamicEmbedding's
// WalkInvalidator keeps indexed queries correct under live edge updates.
func (pe *PPREngine) Index() *WalkIndex { return pe.eng.Index() }

// PPR answers a one-shot seed-set PPR query on g:
//
//	res, err := nrp.PPR(ctx, g, []int{12, 87}, 10, nrp.WithEpsilon(0.3))
//
// For repeated queries build a PPREngine once — it amortizes the O(n)
// workspaces across requests.
func PPR(ctx context.Context, g *Graph, seeds []int, k int, opts ...PPROption) (*PPRResult, error) {
	pe, err := NewPPREngine(g, opts...)
	if err != nil {
		return nil, err
	}
	return pe.Query(ctx, PPRQuery{Seeds: seeds, K: k})
}

// BuildWalkIndex precomputes the FORA+ walk index of g: walksPerNode
// α-terminating walk endpoints per node, simulated on the configured
// thread count (deterministic for a fixed seed, independent of threads).
// Honors WithAlpha, WithPPRSeed and WithThreads.
func BuildWalkIndex(ctx context.Context, g *Graph, walksPerNode int, opts ...PPROption) (*WalkIndex, error) {
	var c pprConfig
	for _, o := range opts {
		o.applyPPR(&c)
	}
	if c.params.Alpha == 0 {
		c.params.Alpha = fora.DefaultAlpha
	}
	if c.params.Seed == 0 {
		c.params.Seed = 1
	}
	wi, err := fora.BuildWalkIndex(ctx, g, par.New(c.threads), c.params.Alpha, walksPerNode, c.params.Seed)
	if err != nil {
		return nil, fmt.Errorf("nrp: building walk index: %w", err)
	}
	return wi, nil
}

// SaveGraphIndexed writes g plus a FORA+ walk index as one NRPG snapshot
// (the index rides in an optional section, tag 128), so a server can boot
// and answer indexed PPR queries without re-simulating walks. Older
// NRPG readers load such a snapshot as a plain graph. wi may be nil,
// making this equivalent to SaveGraph.
func SaveGraphIndexed(path string, g *Graph, wi *WalkIndex) error {
	snap := &gio.Snapshot{Graph: g}
	if wi != nil {
		snap.WalkIndex = &gio.WalkIndexSection{
			Alpha:        wi.Alpha(),
			WalksPerNode: wi.WalksPerNode(),
			Seed:         wi.Seed(),
			Ends:         wi.Raw(),
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("nrp: creating snapshot: %w", err)
	}
	if err := gio.SaveSnapshot(f, snap); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// OpenGraphIndexed opens a graph file like OpenGraph — NRPG snapshots
// are memory-mapped, text edge lists parsed in parallel — and
// additionally returns the snapshot's stored FORA+ walk index, or nil
// when the file carries none (text files never do). A mapped graph and
// index alias the mapping and must not be used after the Closer is
// closed.
func OpenGraphIndexed(path string, directed bool) (*Graph, *WalkIndex, io.Closer, error) {
	bin, err := gio.SniffFile(path)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("nrp: opening graph: %w", err)
	}
	if !bin {
		g, err := loadGraphText(path, directed)
		if err != nil {
			return nil, nil, nil, err
		}
		return g, nil, io.NopCloser(nil), nil
	}
	snap, closer, err := gio.LoadMmapSnapshot(path)
	if err != nil {
		return nil, nil, nil, err
	}
	var wi *WalkIndex
	if s := snap.WalkIndex; s != nil {
		wi, err = fora.WalkIndexFromRaw(snap.Graph.N, s.Alpha, s.WalksPerNode, s.Seed, s.Ends)
		if err != nil {
			closer.Close()
			return nil, nil, nil, fmt.Errorf("nrp: corrupt walk index: %w", err)
		}
	}
	return snap.Graph, wi, closer, nil
}
