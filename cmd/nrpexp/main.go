// Command nrpexp regenerates the paper's tables and figures on the
// synthetic stand-in datasets (see DESIGN.md §3-4 and EXPERIMENTS.md).
//
// Usage:
//
//	nrpexp -exp fig4                 # one experiment, quick profile
//	nrpexp -exp all -full            # everything at the paper-width grids
//	nrpexp -exp fig4 -methods NRP,STRAP -datasets wiki-sim -dims 32,128
//	nrpexp -list                     # available experiment ids
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/nrp-embed/nrp/internal/experiments"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "nrpexp: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "nrpexp:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("nrpexp", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "", "experiment id (or 'all')")
		list     = fs.Bool("list", false, "list experiment ids and exit")
		scale    = fs.Float64("scale", 1, "dataset size multiplier")
		dim      = fs.Int("dim", 128, "embedding dimensionality for non-sweep experiments")
		seed     = fs.Int64("seed", 1, "random seed")
		full     = fs.Bool("full", false, "paper-width sweeps and dataset coverage")
		quiet    = fs.Bool("quiet", false, "suppress progress logging")
		methods  = fs.String("methods", "", "comma-separated method filter")
		datasets = fs.String("datasets", "", "comma-separated dataset filter")
		dims     = fs.String("dims", "", "comma-separated k sweep override (fig4/fig7)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-10s %s\n", r.Name, r.Paper)
		}
		return nil
	}
	if *exp == "" {
		fs.Usage()
		return fmt.Errorf("-exp is required (or -list)")
	}

	cfg := experiments.Config{
		Ctx:   ctx,
		Scale: *scale,
		Dim:   *dim,
		Seed:  *seed,
		Full:  *full,
	}
	if !*quiet {
		cfg.Progress = os.Stderr
	}
	if *methods != "" {
		cfg.Methods = splitCSV(*methods)
	}
	if *datasets != "" {
		cfg.DatasetNames = splitCSV(*datasets)
	}
	if *dims != "" {
		for _, s := range splitCSV(*dims) {
			d, err := strconv.Atoi(s)
			if err != nil {
				return fmt.Errorf("bad -dims entry %q: %v", s, err)
			}
			cfg.Dims = append(cfg.Dims, d)
		}
	}

	var runners []experiments.Runner
	if *exp == "all" {
		runners = experiments.All()
	} else {
		r, err := experiments.Find(*exp)
		if err != nil {
			return err
		}
		runners = []experiments.Runner{r}
	}
	for _, r := range runners {
		if err := ctx.Err(); err != nil {
			return err
		}
		start := time.Now()
		fmt.Printf("### %s — %s\n", r.Name, r.Paper)
		tables, err := r.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", r.Name, err)
		}
		for _, t := range tables {
			if err := t.Render(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		fmt.Printf("### %s done in %v\n\n", r.Name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func splitCSV(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
