package main

import (
	"context"
	"reflect"
	"testing"
)

func TestSplitCSV(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"a,b,c", []string{"a", "b", "c"}},
		{" a , b ", []string{"a", "b"}},
		{"a,,b", []string{"a", "b"}},
		{"", nil},
	}
	for _, c := range cases {
		got := splitCSV(c.in)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("splitCSV(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-exp", "nope"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run(context.Background(), []string{}); err == nil {
		t.Fatal("missing -exp accepted")
	}
	if err := run(context.Background(), []string{"-exp", "fig4", "-dims", "abc"}); err == nil {
		t.Fatal("bad -dims accepted")
	}
}

func TestRunList(t *testing.T) {
	if err := run(context.Background(), []string{"-list"}); err != nil {
		t.Fatal(err)
	}
}
