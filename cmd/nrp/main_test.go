package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/nrp-embed/nrp"
)

func writeTestGraph(t *testing.T, dir string) (graphPath string, g *nrp.Graph) {
	t.Helper()
	graphPath = filepath.Join(dir, "g.txt")
	g, err := nrp.GenSBM(nrp.SBMConfig{N: 100, M: 500, Communities: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := nrp.WriteGraph(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return graphPath, g
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	graphPath, g := writeTestGraph(t, dir)
	embPath := filepath.Join(dir, "emb.bin")

	if err := run(context.Background(), []string{"-input", graphPath, "-output", embPath, "-k", "16"}); err != nil {
		t.Fatal(err)
	}
	ef, err := os.Open(embPath)
	if err != nil {
		t.Fatal(err)
	}
	defer ef.Close()
	emb, err := nrp.LoadEmbedding(ef)
	if err != nil {
		t.Fatal(err)
	}
	if emb.N() != g.N || emb.Dim() != 8 {
		t.Fatalf("embedding shape %dx%d", emb.N(), emb.Dim())
	}
}

func TestRunValidation(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, []string{}); err == nil {
		t.Fatal("missing flags accepted")
	}
	if err := run(ctx, []string{"-input", "/nope", "-output", "/tmp/x"}); err == nil {
		t.Fatal("missing input file accepted")
	}
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.txt")
	os.WriteFile(graphPath, []byte("0 1\n"), 0o644)
	if err := run(ctx, []string{"-input", graphPath, "-output", filepath.Join(dir, "e"), "-method", "bogus"}); err == nil {
		t.Fatal("unknown method accepted")
	}
	// Invalid options must fail fast, before the graph is even read: an
	// odd dimensionality against a nonexistent input still reports the
	// option error.
	err := run(ctx, []string{"-input", "/definitely/not/here", "-output", filepath.Join(dir, "e"), "-k", "7"})
	if err == nil {
		t.Fatal("odd -k accepted")
	}
	if os.IsNotExist(errors.Unwrap(err)) {
		t.Fatalf("graph was opened before options were validated: %v", err)
	}
}

func TestRunCancelled(t *testing.T) {
	dir := t.TempDir()
	graphPath, _ := writeTestGraph(t, dir)
	embPath := filepath.Join(dir, "emb.bin")

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, []string{"-input", graphPath, "-output", embPath, "-k", "16"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, statErr := os.Stat(embPath); statErr == nil {
		t.Fatal("cancelled run wrote an output file")
	}
}

func TestRunTopK(t *testing.T) {
	dir := t.TempDir()
	graphPath, _ := writeTestGraph(t, dir)
	embPath := filepath.Join(dir, "emb.bin")
	if err := run(context.Background(), []string{"-input", graphPath, "-output", embPath, "-k", "16"}); err != nil {
		t.Fatal(err)
	}

	if err := run(context.Background(), []string{"topk", "-embedding", embPath, "-source", "3", "-k", "5"}); err != nil {
		t.Fatal(err)
	}

	// Validation failures.
	if err := run(context.Background(), []string{"topk", "-source", "3"}); err == nil {
		t.Fatal("missing -embedding accepted")
	}
	if err := run(context.Background(), []string{"topk", "-embedding", embPath}); err == nil {
		t.Fatal("missing -source accepted")
	}
	if err := run(context.Background(), []string{"topk", "-embedding", embPath, "-source", "100000"}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}
