package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/nrp-embed/nrp"
)

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.txt")
	embPath := filepath.Join(dir, "emb.bin")

	g, err := nrp.GenSBM(nrp.SBMConfig{N: 100, M: 500, Communities: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := nrp.WriteGraph(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if err := run([]string{"-input", graphPath, "-output", embPath, "-k", "16"}); err != nil {
		t.Fatal(err)
	}
	ef, err := os.Open(embPath)
	if err != nil {
		t.Fatal(err)
	}
	defer ef.Close()
	emb, err := nrp.LoadEmbedding(ef)
	if err != nil {
		t.Fatal(err)
	}
	if emb.N() != g.N || emb.Dim() != 8 {
		t.Fatalf("embedding shape %dx%d", emb.N(), emb.Dim())
	}
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("missing flags accepted")
	}
	if err := run([]string{"-input", "/nope", "-output", "/tmp/x"}); err == nil {
		t.Fatal("missing input file accepted")
	}
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.txt")
	os.WriteFile(graphPath, []byte("0 1\n"), 0o644)
	if err := run([]string{"-input", graphPath, "-output", filepath.Join(dir, "e"), "-method", "bogus"}); err == nil {
		t.Fatal("unknown method accepted")
	}
}
