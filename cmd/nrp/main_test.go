package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/nrp-embed/nrp"
	"github.com/nrp-embed/nrp/internal/gio"
	"github.com/nrp-embed/nrp/internal/graph"
	"github.com/nrp-embed/nrp/internal/serve"
)

func writeTestGraph(t *testing.T, dir string) (graphPath string, g *nrp.Graph) {
	t.Helper()
	graphPath = filepath.Join(dir, "g.txt")
	g, err := nrp.GenSBM(nrp.SBMConfig{N: 100, M: 500, Communities: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := nrp.WriteGraph(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return graphPath, g
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	graphPath, g := writeTestGraph(t, dir)
	embPath := filepath.Join(dir, "emb.bin")

	if err := run(context.Background(), []string{"-input", graphPath, "-output", embPath, "-k", "16"}); err != nil {
		t.Fatal(err)
	}
	ef, err := os.Open(embPath)
	if err != nil {
		t.Fatal(err)
	}
	defer ef.Close()
	emb, err := nrp.LoadEmbedding(ef)
	if err != nil {
		t.Fatal(err)
	}
	if emb.N() != g.N || emb.Dim() != 8 {
		t.Fatalf("embedding shape %dx%d", emb.N(), emb.Dim())
	}
}

func TestRunValidation(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, []string{}); err == nil {
		t.Fatal("missing flags accepted")
	}
	if err := run(ctx, []string{"-input", "/nope", "-output", "/tmp/x"}); err == nil {
		t.Fatal("missing input file accepted")
	}
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.txt")
	os.WriteFile(graphPath, []byte("0 1\n"), 0o644)
	if err := run(ctx, []string{"-input", graphPath, "-output", filepath.Join(dir, "e"), "-method", "bogus"}); err == nil {
		t.Fatal("unknown method accepted")
	}
	// Invalid options must fail fast, before the graph is even read: an
	// odd dimensionality against a nonexistent input still reports the
	// option error.
	err := run(ctx, []string{"-input", "/definitely/not/here", "-output", filepath.Join(dir, "e"), "-k", "7"})
	if err == nil {
		t.Fatal("odd -k accepted")
	}
	if os.IsNotExist(errors.Unwrap(err)) {
		t.Fatalf("graph was opened before options were validated: %v", err)
	}
}

func TestRunCancelled(t *testing.T) {
	dir := t.TempDir()
	graphPath, _ := writeTestGraph(t, dir)
	embPath := filepath.Join(dir, "emb.bin")

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, []string{"-input", graphPath, "-output", embPath, "-k", "16"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, statErr := os.Stat(embPath); statErr == nil {
		t.Fatal("cancelled run wrote an output file")
	}
}

func TestRunTopK(t *testing.T) {
	dir := t.TempDir()
	graphPath, _ := writeTestGraph(t, dir)
	embPath := filepath.Join(dir, "emb.bin")
	if err := run(context.Background(), []string{"-input", graphPath, "-output", embPath, "-k", "16"}); err != nil {
		t.Fatal(err)
	}

	if err := run(context.Background(), []string{"topk", "-embedding", embPath, "-source", "3", "-k", "5"}); err != nil {
		t.Fatal(err)
	}

	// Validation failures.
	if err := run(context.Background(), []string{"topk", "-source", "3"}); err == nil {
		t.Fatal("missing -embedding accepted")
	}
	if err := run(context.Background(), []string{"topk", "-embedding", embPath}); err == nil {
		t.Fatal("missing -source accepted")
	}
	if err := run(context.Background(), []string{"topk", "-embedding", embPath, "-source", "100000"}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if !errors.Is(
		run(context.Background(), []string{"topk", "-embedding", embPath, "-source", "100000"}),
		nrp.ErrNodeOutOfRange,
	) {
		t.Fatal("out-of-range source not reported via ErrNodeOutOfRange")
	}
}

// TestRunTopKBackends runs the topk subcommand against every backend.
func TestRunTopKBackends(t *testing.T) {
	dir := t.TempDir()
	graphPath, _ := writeTestGraph(t, dir)
	embPath := filepath.Join(dir, "emb.bin")
	if err := run(context.Background(), []string{"-input", graphPath, "-output", embPath, "-k", "16"}); err != nil {
		t.Fatal(err)
	}
	for _, backend := range []string{"exact", "quantized", "pruned"} {
		args := []string{"topk", "-embedding", embPath, "-source", "3", "-k", "5", "-backend", backend, "-shards", "2"}
		if err := run(context.Background(), args); err != nil {
			t.Fatalf("backend %s: %v", backend, err)
		}
	}
	if err := run(context.Background(), []string{"topk", "-embedding", embPath, "-source", "3", "-backend", "bogus"}); err == nil {
		t.Fatal("bogus backend accepted")
	}
}

// TestRunIndexBuildAndQuery builds a snapshot with `nrp index` and
// queries it back with `nrp topk -index`.
func TestRunIndexBuildAndQuery(t *testing.T) {
	dir := t.TempDir()
	graphPath, g := writeTestGraph(t, dir)
	embPath := filepath.Join(dir, "emb.bin")
	indexPath := filepath.Join(dir, "index.bin")
	if err := run(context.Background(), []string{"-input", graphPath, "-output", embPath, "-k", "16"}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{
		"index", "-embedding", embPath, "-output", indexPath, "-backend", "pruned", "-shards", "2",
	}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(indexPath)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := nrp.LoadIndex(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ix.N() != g.N {
		t.Fatalf("snapshot indexes %d nodes, want %d", ix.N(), g.N)
	}
	if err := run(context.Background(), []string{"topk", "-index", indexPath, "-source", "3", "-k", "5"}); err != nil {
		t.Fatal(err)
	}

	// Validation failures.
	if err := run(context.Background(), []string{"index", "-embedding", embPath}); err == nil {
		t.Fatal("missing -output accepted")
	}
	if err := run(context.Background(), []string{"index", "-embedding", embPath, "-output", indexPath, "-backend", "bogus"}); err == nil {
		t.Fatal("bogus backend accepted")
	}
	if err := run(context.Background(), []string{"topk", "-embedding", embPath, "-index", indexPath, "-source", "3"}); err == nil {
		t.Fatal("both -embedding and -index accepted")
	}
	// -backend is baked into a snapshot: combining it with -index must be
	// rejected rather than silently ignored.
	if err := run(context.Background(), []string{"topk", "-index", indexPath, "-source", "3", "-backend", "exact"}); err == nil {
		t.Fatal("-backend with -index accepted")
	}
	// -include-self, in contrast, is a serving knob and overrides the
	// snapshot's stored choice.
	if err := run(context.Background(), []string{"topk", "-index", indexPath, "-source", "3", "-include-self"}); err != nil {
		t.Fatal(err)
	}
}

// newLiveTestServer boots an in-process live server over a small graph
// (the same handler cmd/nrpserve serves) for the update subcommand tests.
func newLiveTestServer(t *testing.T) (*httptest.Server, *nrp.LiveIndex) {
	t.Helper()
	g, err := nrp.GenSBM(nrp.SBMConfig{N: 100, M: 500, Communities: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	opt := nrp.DefaultOptions()
	opt.Dim = 16
	dyn, err := nrp.NewDynamicEmbedding(context.Background(), g, opt, nrp.DynamicConfig{})
	if err != nil {
		t.Fatal(err)
	}
	live, err := nrp.NewLiveIndex(dyn)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.NewLiveServer(live, serve.Config{Backend: "exact"}).Handler())
	t.Cleanup(ts.Close)
	return ts, live
}

func writeEdgeFile(t *testing.T, dir, name string, pairs [][2]int) string {
	t.Helper()
	path := filepath.Join(dir, name)
	var sb strings.Builder
	sb.WriteString("# test updates\n")
	for _, p := range pairs {
		fmt.Fprintf(&sb, "%d %d\n", p[0], p[1])
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunUpdate(t *testing.T) {
	ts, live := newLiveTestServer(t)
	dir := t.TempDir()
	insPath := writeEdgeFile(t, dir, "ins.txt", [][2]int{{0, 99}, {1, 98}, {2, 97}})
	remPath := writeEdgeFile(t, dir, "rem.txt", [][2]int{{0, 99}})

	before := live.Searcher()
	// Small -batch forces multiple requests.
	err := run(context.Background(), []string{"update",
		"-server", ts.URL, "-insert", insPath, "-remove", remPath, "-batch", "2"})
	if err != nil {
		t.Fatal(err)
	}
	if live.Pending() != 0 {
		t.Fatalf("%d updates still pending after -refresh", live.Pending())
	}
	if live.Searcher() == before {
		t.Fatal("update run did not refresh the serving index")
	}
	// Net effect: inserted {1,98} and {2,97}; {0,99} was inserted then removed.
	g := live.Dynamic().Graph()
	if !g.HasEdge(1, 98) || !g.HasEdge(2, 97) || g.HasEdge(0, 99) {
		t.Fatal("graph does not reflect the update stream")
	}
}

func TestRunUpdateNoRefresh(t *testing.T) {
	ts, live := newLiveTestServer(t)
	dir := t.TempDir()
	insPath := writeEdgeFile(t, dir, "ins.txt", [][2]int{{3, 96}})
	if err := run(context.Background(), []string{"update",
		"-server", ts.URL, "-insert", insPath, "-refresh=false"}); err != nil {
		t.Fatal(err)
	}
	if live.Pending() != 1 {
		t.Fatalf("pending %d, want 1 (refresh disabled)", live.Pending())
	}
}

func TestRunUpdateValidation(t *testing.T) {
	ts, _ := newLiveTestServer(t)
	dir := t.TempDir()
	insPath := writeEdgeFile(t, dir, "ins.txt", [][2]int{{0, 42}})
	badPath := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(badPath, []byte("0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	outOfRange := writeEdgeFile(t, dir, "oor.txt", [][2]int{{0, 100000}})
	for _, args := range [][]string{
		{"update"},                    // no server
		{"update", "-server", ts.URL}, // no files
		{"update", "-server", ts.URL, "-insert", filepath.Join(dir, "missing.txt")},
		{"update", "-server", ts.URL, "-insert", badPath},
		{"update", "-server", ts.URL, "-insert", insPath, "-batch", "0"},
		{"update", "-server", ts.URL, "-insert", outOfRange}, // server-side 400
	} {
		if err := run(context.Background(), args); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

// TestRunConvertRoundTrip drives text → NRPG → text through the convert
// subcommand and checks the graph (labels included) survives unchanged.
func TestRunConvertRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g, err := nrp.GenSBM(nrp.SBMConfig{N: 90, M: 400, Communities: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	edgePath := filepath.Join(dir, "g.edges")
	f, err := os.Create(edgePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := nrp.WriteGraph(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	lf, err := os.Create(filepath.Join(dir, "g.labels"))
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteLabels(lf, g.Labels); err != nil {
		t.Fatal(err)
	}
	lf.Close()

	snapPath := filepath.Join(dir, "g.nrpg")
	if err := run(context.Background(), []string{"convert",
		"-input", edgePath, "-output", snapPath, "-labels", filepath.Join(dir, "g.labels")}); err != nil {
		t.Fatal(err)
	}
	loaded, err := nrp.LoadGraph(snapPath, false) // sniffed as NRPG
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N != g.N || loaded.NumEdges != g.NumEdges || loaded.NumLabels != g.NumLabels {
		t.Fatalf("snapshot graph n=%d m=%d labels=%d, want n=%d m=%d labels=%d",
			loaded.N, loaded.NumEdges, loaded.NumLabels, g.N, g.NumEdges, g.NumLabels)
	}

	backPath := filepath.Join(dir, "back.edges")
	if err := run(context.Background(), []string{"convert", "-input", snapPath, "-output", backPath}); err != nil {
		t.Fatal(err)
	}
	back, err := nrp.LoadGraph(backPath, false)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != g.N || back.NumEdges != g.NumEdges {
		t.Fatalf("round-tripped graph n=%d m=%d, want n=%d m=%d", back.N, back.NumEdges, g.N, g.NumEdges)
	}
	if _, err := os.Stat(backPath + ".labels"); err != nil {
		t.Fatalf("labels file not emitted on snapshot → edges conversion: %v", err)
	}

	// A second text → NRPG conversion of the round-tripped pair must be
	// byte-identical to the first snapshot: the pipeline is deterministic.
	snap2 := filepath.Join(dir, "g2.nrpg")
	if err := run(context.Background(), []string{"convert",
		"-input", backPath, "-output", snap2, "-labels", backPath + ".labels"}); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(snap2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("text → NRPG conversion is not deterministic across a round trip")
	}
}

// TestRunEmbedFromSnapshot embeds straight from a memory-mapped NRPG
// snapshot (the -input sniffing path).
func TestRunEmbedFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	g, err := nrp.GenSBM(nrp.SBMConfig{N: 100, M: 500, Communities: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, "g.nrpg")
	if err := nrp.SaveGraph(snapPath, g); err != nil {
		t.Fatal(err)
	}
	embPath := filepath.Join(dir, "emb.bin")
	if err := run(context.Background(), []string{"-input", snapPath, "-output", embPath, "-k", "16"}); err != nil {
		t.Fatal(err)
	}
	ef, err := os.Open(embPath)
	if err != nil {
		t.Fatal(err)
	}
	defer ef.Close()
	emb, err := nrp.LoadEmbedding(ef)
	if err != nil {
		t.Fatal(err)
	}
	if emb.N() != g.N {
		t.Fatalf("embedding covers %d nodes, want %d", emb.N(), g.N)
	}
}

func TestRunConvertValidation(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	if err := run(ctx, []string{"convert"}); err == nil {
		t.Fatal("missing flags accepted")
	}
	g, err := nrp.GenSBM(nrp.SBMConfig{N: 40, M: 120, Communities: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, "g.nrpg")
	if err := nrp.SaveGraph(snapPath, g); err != nil {
		t.Fatal(err)
	}
	if err := run(ctx, []string{"convert", "-input", snapPath, "-output",
		filepath.Join(dir, "out"), "-labels", "x.labels"}); err == nil {
		t.Fatal("-labels with snapshot input accepted")
	}
	if err := run(ctx, []string{"convert", "-input", snapPath, "-output",
		filepath.Join(dir, "out"), "-to", "bogus"}); err == nil {
		t.Fatal("bogus -to accepted")
	}
}

// TestRunConvertPreservesAttributes rewrites a snapshot carrying an
// attributes section (which the text format cannot represent) and
// checks the section survives a binary → binary conversion.
func TestRunConvertPreservesAttributes(t *testing.T) {
	dir := t.TempDir()
	g, err := nrp.GenSBM(nrp.SBMConfig{N: 50, M: 150, Communities: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	attrs, err := nrp.GenAttributes(g, 4, 0.1, 10)
	if err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, "a.nrpg")
	f, err := os.Create(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := gio.Save(f, g, attrs); err != nil {
		t.Fatal(err)
	}
	f.Close()

	outPath := filepath.Join(dir, "b.nrpg")
	if err := run(context.Background(), []string{"convert",
		"-input", snapPath, "-output", outPath, "-to", "nrpg"}); err != nil {
		t.Fatal(err)
	}
	rf, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	_, gotAttrs, err := gio.Load(rf)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotAttrs) != g.N || len(gotAttrs[0]) != 4 {
		t.Fatalf("attributes did not survive conversion: got %dx%d rows",
			len(gotAttrs), len(gotAttrs[0]))
	}
	for v, row := range attrs {
		for j, x := range row {
			if gotAttrs[v][j] != x {
				t.Fatalf("attr[%d][%d] = %v, want %v", v, j, gotAttrs[v][j], x)
			}
		}
	}
}

// TestRunPPR drives the ppr subcommand over a text graph, a precomputed
// walk index, and a snapshot that carries its index inline.
func TestRunPPR(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	graphPath, _ := writeTestGraph(t, dir)

	if err := run(ctx, []string{"ppr", "-input", graphPath, "-seeds", "0,3,17", "-k", "5"}); err != nil {
		t.Fatalf("ppr: %v", err)
	}
	if err := run(ctx, []string{"ppr", "-input", graphPath, "-seeds", "2", "-walks", "16", "-json"}); err != nil {
		t.Fatalf("ppr -walks: %v", err)
	}

	// A snapshot converted with -walk-index answers from the stored index.
	snapPath := filepath.Join(dir, "g.nrpg")
	if err := run(ctx, []string{"convert", "-input", graphPath, "-output", snapPath, "-walk-index", "8"}); err != nil {
		t.Fatalf("convert -walk-index: %v", err)
	}
	g, wi, closer, err := nrp.OpenGraphIndexed(snapPath, false)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	if wi == nil || wi.WalksPerNode() != 8 || wi.Nodes() != g.N {
		t.Fatalf("snapshot walk index missing or wrong shape: %+v", wi)
	}
	if err := run(ctx, []string{"ppr", "-input", snapPath, "-seeds", "1,2"}); err != nil {
		t.Fatalf("ppr from indexed snapshot: %v", err)
	}
}

func TestRunPPRValidation(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	graphPath, _ := writeTestGraph(t, dir)
	for _, tc := range [][]string{
		{"ppr"},                      // no input/seeds
		{"ppr", "-input", graphPath}, // no seeds
		{"ppr", "-input", graphPath, "-seeds", "zap"},              // non-numeric seed
		{"ppr", "-input", graphPath, "-seeds", "1000"},             // out of range
		{"ppr", "-input", graphPath, "-seeds", "1", "-k", "0"},     // bad k
		{"ppr", "-input", graphPath, "-seeds", "1", "-alpha", "2"}, // bad alpha
		{"ppr", "-input", "/nope", "-seeds", "1"},                  // missing file
	} {
		if err := run(ctx, tc); err == nil {
			t.Fatalf("args %v accepted", tc)
		}
	}
	// -walk-index is an NRPG feature: text output must refuse it.
	snapPath := filepath.Join(dir, "s.nrpg")
	if err := run(ctx, []string{"convert", "-input", graphPath, "-output", snapPath}); err != nil {
		t.Fatal(err)
	}
	if err := run(ctx, []string{"convert", "-input", snapPath, "-output",
		filepath.Join(dir, "out.txt"), "-walk-index", "4"}); err == nil {
		t.Fatal("convert -walk-index with text output accepted")
	}
}
