// Command nrp computes NRP (or ApproxPPR) embeddings for a graph given as
// an edge list and writes them in the library's binary format.
//
// Usage:
//
//	nrp -input graph.txt -output emb.bin [-directed] [-method nrp|approxppr]
//	    [-k 128] [-alpha 0.15] [-l1 20] [-l2 10] [-eps 0.2] [-lambda 10] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/nrp-embed/nrp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nrp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("nrp", flag.ContinueOnError)
	var (
		input    = fs.String("input", "", "edge-list file (required)")
		output   = fs.String("output", "", "output embedding file (required)")
		directed = fs.Bool("directed", false, "treat edges as directed")
		method   = fs.String("method", "nrp", "embedding method: nrp or approxppr")
		k        = fs.Int("k", 128, "embedding dimensionality (even)")
		alpha    = fs.Float64("alpha", 0.15, "random walk decay factor α")
		l1       = fs.Int("l1", 20, "PPR truncation order ℓ1")
		l2       = fs.Int("l2", 10, "reweighting epochs ℓ2")
		eps      = fs.Float64("eps", 0.2, "BKSVD error threshold ε")
		lambda   = fs.Float64("lambda", 10, "reweighting regularizer λ")
		seed     = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *input == "" || *output == "" {
		fs.Usage()
		return fmt.Errorf("-input and -output are required")
	}

	loadStart := time.Now()
	g, err := nrp.LoadGraph(*input, *directed)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loaded %d nodes, %d edges in %v\n", g.N, g.NumEdges, time.Since(loadStart).Round(time.Millisecond))

	opt := nrp.DefaultOptions()
	opt.Dim = *k
	opt.Alpha = *alpha
	opt.L1 = *l1
	opt.L2 = *l2
	opt.Epsilon = *eps
	opt.Lambda = *lambda
	opt.Seed = *seed

	trainStart := time.Now()
	var emb *nrp.Embedding
	switch *method {
	case "nrp":
		emb, err = nrp.Embed(g, opt)
	case "approxppr":
		emb, err = nrp.EmbedPPR(g, opt)
	default:
		return fmt.Errorf("unknown method %q (want nrp or approxppr)", *method)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "embedded in %v\n", time.Since(trainStart).Round(time.Millisecond))

	f, err := os.Create(*output)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := emb.Save(f); err != nil {
		return err
	}
	return f.Close()
}
