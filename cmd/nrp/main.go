// Command nrp computes NRP (or ApproxPPR) embeddings for a graph given as
// an edge list, and serves top-k proximity queries over saved embeddings.
//
// Usage:
//
//	nrp -input graph.txt -output emb.bin [-directed] [-method nrp|approxppr]
//	    [-k 128] [-alpha 0.15] [-l1 20] [-l2 10] [-eps 0.2] [-lambda 10] [-seed 1]
//	    [-progress]
//	nrp topk -embedding emb.bin -source 42 [-k 10] [-include-self]
//
// Embedding runs print per-phase stats on completion and cancel gracefully
// on SIGINT/SIGTERM, exiting without writing a partial output file.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"github.com/nrp-embed/nrp"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nrp:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	if len(args) > 0 && args[0] == "topk" {
		return runTopK(ctx, args[1:])
	}
	return runEmbed(ctx, args)
}

func runEmbed(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("nrp", flag.ContinueOnError)
	var (
		input    = fs.String("input", "", "edge-list file (required)")
		output   = fs.String("output", "", "output embedding file (required)")
		directed = fs.Bool("directed", false, "treat edges as directed")
		method   = fs.String("method", "nrp", "embedding method: nrp or approxppr")
		k        = fs.Int("k", 128, "embedding dimensionality (even)")
		alpha    = fs.Float64("alpha", 0.15, "random walk decay factor α")
		l1       = fs.Int("l1", 20, "PPR truncation order ℓ1")
		l2       = fs.Int("l2", 10, "reweighting epochs ℓ2")
		eps      = fs.Float64("eps", 0.2, "BKSVD error threshold ε")
		lambda   = fs.Float64("lambda", 10, "reweighting regularizer λ")
		seed     = fs.Int64("seed", 1, "random seed")
		progress = fs.Bool("progress", false, "log per-phase progress to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *input == "" || *output == "" {
		fs.Usage()
		return fmt.Errorf("-input and -output are required")
	}

	opt := nrp.DefaultOptions()
	opt.Dim = *k
	opt.Alpha = *alpha
	opt.L1 = *l1
	opt.L2 = *l2
	opt.Epsilon = *eps
	opt.Lambda = *lambda
	opt.Seed = *seed
	// Fail fast on inconsistent flags, before any graph loading.
	if err := opt.Validate(); err != nil {
		return err
	}

	loadStart := time.Now()
	g, err := nrp.LoadGraph(*input, *directed)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loaded %d nodes, %d edges in %v\n", g.N, g.NumEdges, time.Since(loadStart).Round(time.Millisecond))

	var runOpts []nrp.RunOption
	if *progress {
		runOpts = append(runOpts, nrp.WithProgress(func(ev nrp.ProgressEvent) {
			fmt.Fprintf(os.Stderr, "  [%v] %s %d/%d\n", ev.Elapsed.Round(time.Millisecond), ev.Phase, ev.Step, ev.Total)
		}))
	}

	var emb *nrp.Embedding
	var stats *nrp.Stats
	switch *method {
	case "nrp":
		emb, stats, err = nrp.EmbedCtx(ctx, g, opt, runOpts...)
	case "approxppr":
		emb, stats, err = nrp.EmbedPPRCtx(ctx, g, opt, runOpts...)
	default:
		return fmt.Errorf("unknown method %q (want nrp or approxppr)", *method)
	}
	if err != nil {
		if ctx.Err() != nil && stats != nil {
			fmt.Fprintf(os.Stderr, "cancelled after %v\n", stats.Total.Round(time.Millisecond))
		}
		return err
	}
	stats.Render(os.Stderr)

	f, err := os.Create(*output)
	if err != nil {
		return err
	}
	if err := emb.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func runTopK(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("nrp topk", flag.ContinueOnError)
	var (
		embPath     = fs.String("embedding", "", "embedding file written by an embed run (required)")
		source      = fs.Int("source", -1, "query source node id (required)")
		k           = fs.Int("k", 10, "number of neighbors to return")
		workers     = fs.Int("workers", 0, "scan goroutines (0 = all cores)")
		includeSelf = fs.Bool("include-self", false, "admit the source node as a result")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *embPath == "" {
		fs.Usage()
		return fmt.Errorf("-embedding is required")
	}
	if *source < 0 {
		fs.Usage()
		return fmt.Errorf("-source is required")
	}

	f, err := os.Open(*embPath)
	if err != nil {
		return err
	}
	emb, err := nrp.LoadEmbedding(f)
	f.Close()
	if err != nil {
		return err
	}

	ix := nrp.NewIndex(emb, nrp.IndexOptions{Workers: *workers, IncludeSelf: *includeSelf})
	start := time.Now()
	nbrs, err := ix.TopK(ctx, *source, *k)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "top-%d of node %d over %d nodes in %v\n",
		len(nbrs), *source, ix.N(), time.Since(start).Round(time.Microsecond))
	for rank, nb := range nbrs {
		fmt.Printf("%-4d %-10d %s\n", rank+1, nb.Node, strconv.FormatFloat(nb.Score, 'g', 6, 64))
	}
	return nil
}
