// Command nrp computes NRP (or ApproxPPR) embeddings for a graph given as
// an edge list, builds query-index snapshots, and serves top-k proximity
// queries over saved embeddings or snapshots.
//
// Usage:
//
//	nrp -input graph.txt -output emb.bin [-directed] [-method nrp|approxppr]
//	    [-k 128] [-alpha 0.15] [-l1 20] [-l2 10] [-eps 0.2] [-lambda 10] [-seed 1]
//	    [-progress] [-threads 0] [-estimator push|fora]
//	nrp index -embedding emb.bin -output index.bin [-backend exact|quantized|pruned|hnsw]
//	    [-shards 0] [-rerank 4] [-include-self] [-threads 0]
//	    [-hnsw-m 16] [-hnsw-efc 200] [-hnsw-seed 1] [-hnsw-quant]
//	    [-ef-search 64] [-hnsw-seed-rows 0]
//	nrp topk -embedding emb.bin -source 42 [-k 10] [-backend quantized] [-include-self]
//	nrp topk -index index.bin -source 42 [-k 10] [-ef-search 64] [-hnsw-seed-rows 0]
//	nrp update -server http://localhost:8080 [-insert new.txt] [-remove gone.txt]
//	    [-refresh] [-batch 1024]
//	nrp ppr -input graph.txt -seeds 3,17,42 [-k 10] [-alpha 0.15] [-epsilon 0.5]
//	    [-directed] [-walks 0] [-threads 0] [-json]
//	nrp convert -input graph.txt -output graph.nrpg [-directed] [-labels graph.labels]
//	    [-walk-index 0] [-walk-alpha 0.15] [-walk-seed 1]
//	nrp convert -input graph.nrpg -output graph.txt
//
// `nrp index` persists the built index (including the backend's
// build-time preprocessing) for cmd/nrpserve to boot from. `nrp update`
// streams edge insertions/removals (edge-list files, "u v" per line) to a
// live nrpserve instance started with -graph, then optionally triggers a
// refresh so the serving index absorbs them. `nrp ppr` answers one online
// seed-set PPR query with the FORA estimator — the offline twin of
// nrpserve's /v1/ppr endpoint; -walks N precomputes a FORA+ walk index
// before querying, and an NRPG input saved with one uses it
// automatically. `nrp convert` translates between text edge lists and
// NRPG binary snapshots (format auto-detected from the input's magic
// bytes, overridable with -to); a binary → binary conversion re-verifies
// the checksum and rewrites the snapshot. `nrp convert -walk-index N`
// additionally simulates N walks per node and bundles the FORA+ index
// into the snapshot, so PPR-serving processes boot without re-simulating
// (older readers skip the extra section).
//
// Graph-reading flags (-input here, -graph on nrpserve) accept either
// format, sniffed by magic bytes. NRPG snapshots are memory-mapped, so an
// embed run on a multi-gigabyte graph starts in milliseconds instead of
// re-parsing text. Embedding runs print per-phase stats on completion and
// cancel gracefully on SIGINT/SIGTERM, exiting without writing a partial
// output file.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/nrp-embed/nrp"
	"github.com/nrp-embed/nrp/internal/gio"
	"github.com/nrp-embed/nrp/internal/graph"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nrp:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	if len(args) > 0 {
		switch args[0] {
		case "topk":
			return runTopK(ctx, args[1:])
		case "index":
			return runIndexBuild(ctx, args[1:])
		case "update":
			return runUpdate(ctx, args[1:])
		case "ppr":
			return runPPR(ctx, args[1:])
		case "convert":
			return runConvert(ctx, args[1:])
		}
	}
	return runEmbed(ctx, args)
}

// runPPR answers one online seed-set PPR query from the command line —
// load (or map) the graph, run the FORA estimator, print the top-k.
func runPPR(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("nrp ppr", flag.ContinueOnError)
	var (
		input    = fs.String("input", "", "graph file: edge list or NRPG snapshot (required)")
		seedsStr = fs.String("seeds", "", "comma-separated seed node ids (required)")
		k        = fs.Int("k", 10, "number of top results to return")
		alpha    = fs.Float64("alpha", 0, "walk termination probability (0 = default 0.15)")
		epsilon  = fs.Float64("epsilon", 0, "relative error bound (0 = default 0.5)")
		directed = fs.Bool("directed", false, "treat text edge-list input as directed")
		walks    = fs.Int("walks", 0, "precompute a FORA+ walk index with this many walks per node before querying (0 = none)")
		threads  = fs.Int("threads", 0, "worker threads for walks (0 = all cores)")
		jsonOut  = fs.Bool("json", false, "write the result as JSON to stdout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *input == "" || *seedsStr == "" {
		fs.Usage()
		return fmt.Errorf("-input and -seeds are required")
	}
	var seeds []int
	for _, fld := range strings.Split(*seedsStr, ",") {
		fld = strings.TrimSpace(fld)
		if fld == "" {
			continue
		}
		s, err := strconv.Atoi(fld)
		if err != nil {
			return fmt.Errorf("bad seed id %q", fld)
		}
		seeds = append(seeds, s)
	}

	loadStart := time.Now()
	g, storedIdx, closer, err := nrp.OpenGraphIndexed(*input, *directed)
	if err != nil {
		return err
	}
	defer closer.Close()
	fmt.Fprintf(os.Stderr, "loaded %d nodes, %d edges in %v\n", g.N, g.NumEdges, time.Since(loadStart).Round(time.Millisecond))

	opts := []nrp.PPROption{nrp.WithThreads(*threads)}
	if *alpha != 0 {
		opts = append(opts, nrp.WithAlpha(*alpha))
	}
	if *epsilon != 0 {
		opts = append(opts, nrp.WithEpsilon(*epsilon))
	}
	switch {
	case *walks > 0:
		start := time.Now()
		wi, err := nrp.BuildWalkIndex(ctx, g, *walks, opts...)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "walk index (%d walks/node) built in %v\n", *walks, time.Since(start).Round(time.Millisecond))
		opts = append(opts, nrp.WithWalkIndex(wi))
	case storedIdx != nil:
		fmt.Fprintf(os.Stderr, "using snapshot walk index (%d walks/node)\n", storedIdx.WalksPerNode())
		opts = append(opts, nrp.WithWalkIndex(storedIdx))
	}
	pe, err := nrp.NewPPREngine(g, opts...)
	if err != nil {
		return err
	}
	res, err := pe.Query(ctx, nrp.PPRQuery{Seeds: seeds, K: *k})
	if err != nil {
		return err
	}
	st := res.Stats
	fmt.Fprintf(os.Stderr, "ppr of %d seeds over %d nodes: push %v (%d nodes, rmax %.3g), %d walks in %v (index=%v), %d candidates\n",
		len(seeds), g.N, st.PushTime.Round(time.Microsecond), st.Pushed, st.Rmax,
		st.Walks, st.WalkTime.Round(time.Microsecond), st.UsedIndex, st.Candidates)

	if *jsonOut {
		type scoreJSON struct {
			Node  int     `json:"node"`
			Score float64 `json:"score"`
		}
		out := struct {
			Seeds  []int       `json:"seeds"`
			K      int         `json:"k"`
			Scores []scoreJSON `json:"scores"`
		}{Seeds: seeds, K: *k}
		for _, s := range res.Scores {
			out.Scores = append(out.Scores, scoreJSON{Node: s.Node, Score: s.Score})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	for rank, s := range res.Scores {
		fmt.Printf("%-4d %-10d %s\n", rank+1, s.Node, strconv.FormatFloat(s.Score, 'g', 6, 64))
	}
	return nil
}

// runConvert translates between the text edge-list format and NRPG
// binary snapshots. Snapshot input is fully verified (checksum and CSR
// structure) and its attributes section, which the text format cannot
// represent, is carried through to snapshot output.
func runConvert(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("nrp convert", flag.ContinueOnError)
	var (
		input      = fs.String("input", "", "input graph: edge list or NRPG snapshot (required)")
		output     = fs.String("output", "", "output path (required)")
		to         = fs.String("to", "auto", "output format: nrpg, edges, or auto (the opposite of the input)")
		directed   = fs.Bool("directed", false, "treat text edge-list input as directed (snapshots store their own)")
		labelsPath = fs.String("labels", "", "label file to bundle into the snapshot (text input only)")
		walkIdx    = fs.Int("walk-index", 0, "bundle a FORA+ walk index with this many walks per node into the snapshot (nrpg output only)")
		walkAlpha  = fs.Float64("walk-alpha", 0.15, "walk termination probability for -walk-index")
		walkSeed   = fs.Int64("walk-seed", 1, "RNG seed for -walk-index")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *input == "" || *output == "" {
		fs.Usage()
		return fmt.Errorf("-input and -output are required")
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	bin, err := gio.SniffFile(*input)
	if err != nil {
		return err
	}
	if bin && *labelsPath != "" {
		return fmt.Errorf("-labels applies to text input; snapshots carry their labels inline")
	}

	start := time.Now()
	var g *nrp.Graph
	var attrs [][]float64
	if bin {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		g, attrs, err = gio.Load(f) // full verification, attributes kept
		f.Close()
		if err != nil {
			return err
		}
	} else {
		var err error
		if g, err = nrp.LoadGraph(*input, *directed); err != nil {
			return err
		}
	}
	if *labelsPath != "" {
		lf, err := os.Open(*labelsPath)
		if err != nil {
			return err
		}
		labels, numLabels, err := graph.ReadLabels(lf, g.N)
		lf.Close()
		if err != nil {
			return err
		}
		if g, err = g.WithLabels(labels, numLabels); err != nil {
			return err
		}
	}
	loadElapsed := time.Since(start)

	format := *to
	if format == "auto" {
		if bin {
			format = "edges"
		} else {
			format = "nrpg"
		}
	}
	start = time.Now()
	switch format {
	case "nrpg":
		snap := &gio.Snapshot{Graph: g, Attrs: attrs}
		if *walkIdx > 0 {
			wi, err := nrp.BuildWalkIndex(ctx, g, *walkIdx,
				nrp.WithAlpha(*walkAlpha), nrp.WithPPRSeed(*walkSeed))
			if err != nil {
				return err
			}
			snap.WalkIndex = &gio.WalkIndexSection{
				Alpha:        wi.Alpha(),
				WalksPerNode: wi.WalksPerNode(),
				Seed:         wi.Seed(),
				Ends:         wi.Raw(),
			}
			fmt.Fprintf(os.Stderr, "walk index: %d walks/node at alpha %g\n", *walkIdx, *walkAlpha)
		}
		f, err := os.Create(*output)
		if err != nil {
			return err
		}
		if err := gio.SaveSnapshot(f, snap); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	case "edges":
		if *walkIdx > 0 {
			return fmt.Errorf("-walk-index requires nrpg output; the text format has no optional sections")
		}
		f, err := os.Create(*output)
		if err != nil {
			return err
		}
		if err := nrp.WriteGraph(f, g); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if g.Labels != nil {
			lf, err := os.Create(*output + ".labels")
			if err != nil {
				return err
			}
			if err := graph.WriteLabels(lf, g.Labels); err != nil {
				lf.Close()
				return err
			}
			if err := lf.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s.labels (%d classes)\n", *output, g.NumLabels)
		}
		if attrs != nil {
			fmt.Fprintf(os.Stderr, "warning: the text format cannot carry the snapshot's %d-dimensional attributes section; dropped\n", len(attrs[0]))
		}
	default:
		return fmt.Errorf("unknown -to format %q (want nrpg, edges or auto)", format)
	}
	st, err := os.Stat(*output)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "converted %d nodes, %d edges (directed=%v, labels=%d): read %v, wrote %s (%.1f MB) in %v\n",
		g.N, g.NumEdges, g.Directed, g.NumLabels,
		loadElapsed.Round(time.Millisecond), *output,
		float64(st.Size())/(1<<20), time.Since(start).Round(time.Millisecond))
	return nil
}

func runEmbed(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("nrp", flag.ContinueOnError)
	var (
		input     = fs.String("input", "", "edge-list file (required)")
		output    = fs.String("output", "", "output embedding file (required)")
		directed  = fs.Bool("directed", false, "treat edges as directed")
		method    = fs.String("method", "nrp", "embedding method: nrp or approxppr")
		k         = fs.Int("k", 128, "embedding dimensionality (even)")
		alpha     = fs.Float64("alpha", 0.15, "random walk decay factor α")
		l1        = fs.Int("l1", 20, "PPR truncation order ℓ1")
		l2        = fs.Int("l2", 10, "reweighting epochs ℓ2")
		eps       = fs.Float64("eps", 0.2, "BKSVD error threshold ε")
		lambda    = fs.Float64("lambda", 10, "reweighting regularizer λ")
		seed      = fs.Int64("seed", 1, "random seed")
		progress  = fs.Bool("progress", false, "log per-phase progress to stderr")
		threads   = fs.Int("threads", 0, "worker threads for the compute engine (0 = all cores)")
		estimator = fs.String("estimator", "", "approximate-PPR backend: push (default) or fora")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *input == "" || *output == "" {
		fs.Usage()
		return fmt.Errorf("-input and -output are required")
	}

	opt := nrp.DefaultOptions()
	opt.Dim = *k
	opt.Alpha = *alpha
	opt.L1 = *l1
	opt.L2 = *l2
	opt.Epsilon = *eps
	opt.Lambda = *lambda
	opt.Seed = *seed
	// Fail fast on inconsistent flags, before any graph loading.
	if err := opt.Validate(); err != nil {
		return err
	}
	est, err := nrp.ParseEstimator(*estimator)
	if err != nil {
		return err
	}

	loadStart := time.Now()
	g, graphCloser, err := nrp.OpenGraph(*input, *directed)
	if err != nil {
		return err
	}
	defer graphCloser.Close()
	fmt.Fprintf(os.Stderr, "loaded %d nodes, %d edges in %v\n", g.N, g.NumEdges, time.Since(loadStart).Round(time.Millisecond))

	runOpts := []nrp.RunOption{nrp.WithThreads(*threads), nrp.WithEstimator(est)}
	if *progress {
		runOpts = append(runOpts, nrp.WithProgress(func(ev nrp.ProgressEvent) {
			fmt.Fprintf(os.Stderr, "  [%v] %s %d/%d\n", ev.Elapsed.Round(time.Millisecond), ev.Phase, ev.Step, ev.Total)
		}))
	}

	var emb *nrp.Embedding
	var stats *nrp.Stats
	switch *method {
	case "nrp":
		emb, stats, err = nrp.EmbedCtx(ctx, g, opt, runOpts...)
	case "approxppr":
		emb, stats, err = nrp.EmbedPPRCtx(ctx, g, opt, runOpts...)
	default:
		return fmt.Errorf("unknown method %q (want nrp or approxppr)", *method)
	}
	if err != nil {
		if ctx.Err() != nil && stats != nil {
			fmt.Fprintf(os.Stderr, "cancelled after %v\n", stats.Total.Round(time.Millisecond))
		}
		return err
	}
	stats.Render(os.Stderr)

	f, err := os.Create(*output)
	if err != nil {
		return err
	}
	if err := emb.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// loadSearcher resolves the -embedding/-index flag pair shared by the
// topk subcommand: a snapshot is loaded as built (serving knobs may
// override its stored configuration), a raw embedding is indexed on the
// fly with the requested backend. includeSelf is a pointer so that only
// an explicitly set flag overrides a snapshot's stored choice. extra
// carries explicitly set HNSW flags; the library rejects the ones that
// are baked into a snapshot (build-time parameters) with a clear error,
// so they are passed through on both paths.
func loadSearcher(embPath, indexPath, backendName string, backendSet bool, shards, rerank int, includeSelf *bool, extra ...nrp.IndexOption) (nrp.Searcher, error) {
	if (embPath == "") == (indexPath == "") {
		return nil, fmt.Errorf("exactly one of -embedding and -index is required")
	}
	if indexPath != "" {
		if backendSet {
			return nil, fmt.Errorf("-backend is baked into the snapshot; it cannot be combined with -index")
		}
		f, err := os.Open(indexPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		var opts []nrp.IndexOption
		if shards > 0 {
			opts = append(opts, nrp.WithShards(shards))
		}
		if rerank > 0 {
			opts = append(opts, nrp.WithRerank(rerank))
		}
		if includeSelf != nil {
			opts = append(opts, nrp.WithIncludeSelf(*includeSelf))
		}
		opts = append(opts, extra...)
		return nrp.LoadIndex(f, opts...)
	}
	backend, err := nrp.ParseBackend(backendName)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(embPath)
	if err != nil {
		return nil, err
	}
	emb, err := nrp.LoadEmbedding(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	opts := []nrp.IndexOption{
		nrp.WithBackend(backend),
		nrp.WithShards(shards),
	}
	if includeSelf != nil {
		opts = append(opts, nrp.WithIncludeSelf(*includeSelf))
	}
	if rerank > 0 {
		opts = append(opts, nrp.WithRerank(rerank))
	}
	opts = append(opts, extra...)
	return nrp.BuildIndex(emb, opts...)
}

func runTopK(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("nrp topk", flag.ContinueOnError)
	var (
		embPath     = fs.String("embedding", "", "embedding file written by an embed run")
		indexPath   = fs.String("index", "", "index snapshot written by `nrp index` (alternative to -embedding)")
		source      = fs.Int("source", -1, "query source node id (required)")
		k           = fs.Int("k", 10, "number of neighbors to return")
		backendName = fs.String("backend", "exact", "query backend: exact, quantized, pruned or hnsw (with -embedding)")
		shards      = fs.Int("shards", 0, "scan shards (0 = all cores)")
		rerank      = fs.Int("rerank", 0, "quantized shortlist multiplier (0 = default)")
		includeSelf = fs.Bool("include-self", false, "admit the source node as a result")
		efSearch    = fs.Int("ef-search", 0, "hnsw beam width (serving knob; overrides a snapshot's stored value)")
		seedRows    = fs.Int("hnsw-seed-rows", 0, "hnsw top-norm rows seeding each beam (serving knob; 0 = 4*ef-search)")
		hnswQuant   = fs.Bool("hnsw-quant", false, "hnsw: score in-graph with the int8 kernel, rerank exactly (build-time; -embedding only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *source < 0 {
		fs.Usage()
		return fmt.Errorf("-source is required")
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	var selfOverride *bool
	if set["include-self"] {
		selfOverride = includeSelf
	}
	// Only explicitly set HNSW flags become options, so the library can
	// loudly reject combinations that make no sense (an HNSW knob on a
	// scan backend, a build-time parameter against a snapshot).
	var extra []nrp.IndexOption
	if set["ef-search"] {
		extra = append(extra, nrp.WithEfSearch(*efSearch))
	}
	if set["hnsw-seed-rows"] {
		extra = append(extra, nrp.WithHNSWSeedRows(*seedRows))
	}
	if set["hnsw-quant"] {
		extra = append(extra, nrp.WithHNSWQuantized(*hnswQuant))
	}
	ix, err := loadSearcher(*embPath, *indexPath, *backendName, set["backend"], *shards, *rerank, selfOverride, extra...)
	if err != nil {
		return err
	}

	start := time.Now()
	results, err := ix.TopKMany(ctx, []int{*source}, *k)
	if err != nil {
		return err
	}
	res := results[0]
	fmt.Fprintf(os.Stderr, "top-%d of node %d over %d nodes in %v (scanned %d, pruned %d, reranked %d)\n",
		len(res.Neighbors), *source, ix.N(), time.Since(start).Round(time.Microsecond),
		res.Stats.Scanned, res.Stats.Pruned, res.Stats.Reranked)
	for rank, nb := range res.Neighbors {
		fmt.Printf("%-4d %-10d %s\n", rank+1, nb.Node, strconv.FormatFloat(nb.Score, 'g', 6, 64))
	}
	return nil
}

// readEdgePairs parses a whitespace-separated edge list ("u v" per line,
// '#' comments) into raw id pairs, without building a graph — update
// batches may legitimately reference edges absent from any snapshot.
func readEdgePairs(path string) ([][2]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var pairs [][2]int
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("%s:%d: want \"u v\", got %q", path, line, text)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad source id %q", path, line, fields[0])
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad target id %q", path, line, fields[1])
		}
		pairs = append(pairs, [2]int{u, v})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return pairs, nil
}

// postJSON posts body to url and decodes the JSON response into out,
// surfacing non-2xx statuses with the server's error message.
func postJSON(ctx context.Context, client *http.Client, url string, body, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(payload, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s (status %d)", url, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return json.Unmarshal(payload, out)
}

// runUpdate streams edge updates to a live nrpserve instance in batches,
// then optionally triggers a refresh so the serving index absorbs them.
func runUpdate(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("nrp update", flag.ContinueOnError)
	var (
		server     = fs.String("server", "", "base URL of a live nrpserve instance (required)")
		insertPath = fs.String("insert", "", "edge-list file of edges to insert")
		removePath = fs.String("remove", "", "edge-list file of edges to remove")
		refresh    = fs.Bool("refresh", true, "trigger a refresh after applying the updates")
		batch      = fs.Int("batch", 1024, "updates per request (server's -max-batch caps this)")
		timeout    = fs.Duration("timeout", time.Minute, "per-request timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *server == "" {
		fs.Usage()
		return fmt.Errorf("-server is required")
	}
	if *insertPath == "" && *removePath == "" {
		fs.Usage()
		return fmt.Errorf("at least one of -insert and -remove is required")
	}
	if *batch <= 0 {
		return fmt.Errorf("-batch must be positive, got %d", *batch)
	}
	base := strings.TrimRight(*server, "/")
	client := &http.Client{Timeout: *timeout}

	var inserts, removes [][2]int
	var err error
	if *insertPath != "" {
		if inserts, err = readEdgePairs(*insertPath); err != nil {
			return err
		}
	}
	if *removePath != "" {
		if removes, err = readEdgePairs(*removePath); err != nil {
			return err
		}
	}

	applied, pending := 0, 0
	send := func(ins, rem [][2]int) error {
		var resp struct {
			Applied int `json:"applied"`
			Pending int `json:"pending"`
		}
		req := map[string]any{}
		if len(ins) > 0 {
			req["insert"] = ins
		}
		if len(rem) > 0 {
			req["remove"] = rem
		}
		if err := postJSON(ctx, client, base+"/v1/update", req, &resp); err != nil {
			return err
		}
		applied += resp.Applied
		pending = resp.Pending
		return nil
	}
	for lo := 0; lo < len(inserts); lo += *batch {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := send(inserts[lo:min(lo+*batch, len(inserts))], nil); err != nil {
			return err
		}
	}
	for lo := 0; lo < len(removes); lo += *batch {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := send(nil, removes[lo:min(lo+*batch, len(removes))]); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "sent %d insertions, %d removals: %d applied, %d pending\n",
		len(inserts), len(removes), applied, pending)

	if !*refresh {
		return nil
	}
	var rr struct {
		Mode         string `json:"mode"`
		TouchedNodes int    `json:"touched_nodes"`
		ElapsedUs    int64  `json:"elapsed_us"`
		Nodes        int    `json:"nodes"`
	}
	if err := postJSON(ctx, client, base+"/v1/refresh", struct{}{}, &rr); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "refreshed (%s): touched %d nodes in %v, serving %d nodes\n",
		rr.Mode, rr.TouchedNodes, time.Duration(rr.ElapsedUs)*time.Microsecond, rr.Nodes)
	return nil
}

// runIndexBuild builds a query index over a saved embedding and persists
// it as a snapshot for nrpserve (or later topk runs) to boot from.
func runIndexBuild(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("nrp index", flag.ContinueOnError)
	var (
		embPath     = fs.String("embedding", "", "embedding file written by an embed run (required)")
		output      = fs.String("output", "", "output index snapshot file (required)")
		backendName = fs.String("backend", "quantized", "index backend: exact, quantized, pruned or hnsw")
		shards      = fs.Int("shards", 0, "scan shards to record in the snapshot (0 = all cores at load time)")
		rerank      = fs.Int("rerank", 0, "quantized shortlist multiplier (0 = default)")
		includeSelf = fs.Bool("include-self", false, "admit query nodes as their own results")
		threads     = fs.Int("threads", 0, "worker threads for build-time preprocessing (0 = all cores)")
		hnswM       = fs.Int("hnsw-m", 0, "hnsw graph degree (0 = default)")
		hnswEfc     = fs.Int("hnsw-efc", 0, "hnsw construction beam width (0 = default)")
		hnswSeed    = fs.Uint64("hnsw-seed", 0, "hnsw level-assignment RNG seed (explicit 0 is honored)")
		hnswQuant   = fs.Bool("hnsw-quant", false, "hnsw: quantize the coarse stage, rerank exactly")
		efSearch    = fs.Int("ef-search", 0, "hnsw query beam width recorded in the snapshot (0 = default)")
		seedRows    = fs.Int("hnsw-seed-rows", 0, "hnsw top-norm seed rows recorded in the snapshot (0 = 4*ef-search)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *embPath == "" || *output == "" {
		fs.Usage()
		return fmt.Errorf("-embedding and -output are required")
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	backend, err := nrp.ParseBackend(*backendName)
	if err != nil {
		return err
	}
	f, err := os.Open(*embPath)
	if err != nil {
		return err
	}
	emb, err := nrp.LoadEmbedding(f)
	f.Close()
	if err != nil {
		return err
	}

	start := time.Now()
	opts := []nrp.IndexOption{
		nrp.WithBackend(backend),
		nrp.WithShards(*shards),
		nrp.WithIncludeSelf(*includeSelf),
		nrp.WithThreads(*threads),
	}
	if *rerank > 0 {
		opts = append(opts, nrp.WithRerank(*rerank))
	}
	// Forward only explicitly set HNSW flags: BuildIndex validates them
	// against the backend, so -hnsw-m on a scan backend fails loudly
	// instead of being silently dropped. fs.Visit distinguishes an
	// explicit -hnsw-seed 0 (a deliberate, honored seed) from the default.
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "hnsw-m":
			opts = append(opts, nrp.WithHNSWM(*hnswM))
		case "hnsw-efc":
			opts = append(opts, nrp.WithHNSWEfConstruction(*hnswEfc))
		case "hnsw-seed":
			opts = append(opts, nrp.WithHNSWSeed(*hnswSeed))
		case "hnsw-quant":
			opts = append(opts, nrp.WithHNSWQuantized(*hnswQuant))
		case "ef-search":
			opts = append(opts, nrp.WithEfSearch(*efSearch))
		case "hnsw-seed-rows":
			opts = append(opts, nrp.WithHNSWSeedRows(*seedRows))
		}
	})
	ix, err := nrp.BuildIndex(emb, opts...)
	if err != nil {
		return err
	}
	out, err := os.Create(*output)
	if err != nil {
		return err
	}
	if err := nrp.SaveIndex(out, ix); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "built %s index over %d nodes in %v -> %s\n",
		backend, ix.N(), time.Since(start).Round(time.Millisecond), *output)
	return nil
}
