// Command nrp computes NRP (or ApproxPPR) embeddings for a graph given as
// an edge list, builds query-index snapshots, and serves top-k proximity
// queries over saved embeddings or snapshots.
//
// Usage:
//
//	nrp -input graph.txt -output emb.bin [-directed] [-method nrp|approxppr]
//	    [-k 128] [-alpha 0.15] [-l1 20] [-l2 10] [-eps 0.2] [-lambda 10] [-seed 1]
//	    [-progress]
//	nrp index -embedding emb.bin -output index.bin [-backend exact|quantized|pruned]
//	    [-shards 0] [-rerank 4] [-include-self]
//	nrp topk -embedding emb.bin -source 42 [-k 10] [-backend quantized] [-include-self]
//	nrp topk -index index.bin -source 42 [-k 10]
//
// `nrp index` persists the built index (including the backend's
// build-time preprocessing) for cmd/nrpserve to boot from. Embedding runs
// print per-phase stats on completion and cancel gracefully on
// SIGINT/SIGTERM, exiting without writing a partial output file.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"github.com/nrp-embed/nrp"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nrp:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	if len(args) > 0 {
		switch args[0] {
		case "topk":
			return runTopK(ctx, args[1:])
		case "index":
			return runIndexBuild(ctx, args[1:])
		}
	}
	return runEmbed(ctx, args)
}

func runEmbed(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("nrp", flag.ContinueOnError)
	var (
		input    = fs.String("input", "", "edge-list file (required)")
		output   = fs.String("output", "", "output embedding file (required)")
		directed = fs.Bool("directed", false, "treat edges as directed")
		method   = fs.String("method", "nrp", "embedding method: nrp or approxppr")
		k        = fs.Int("k", 128, "embedding dimensionality (even)")
		alpha    = fs.Float64("alpha", 0.15, "random walk decay factor α")
		l1       = fs.Int("l1", 20, "PPR truncation order ℓ1")
		l2       = fs.Int("l2", 10, "reweighting epochs ℓ2")
		eps      = fs.Float64("eps", 0.2, "BKSVD error threshold ε")
		lambda   = fs.Float64("lambda", 10, "reweighting regularizer λ")
		seed     = fs.Int64("seed", 1, "random seed")
		progress = fs.Bool("progress", false, "log per-phase progress to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *input == "" || *output == "" {
		fs.Usage()
		return fmt.Errorf("-input and -output are required")
	}

	opt := nrp.DefaultOptions()
	opt.Dim = *k
	opt.Alpha = *alpha
	opt.L1 = *l1
	opt.L2 = *l2
	opt.Epsilon = *eps
	opt.Lambda = *lambda
	opt.Seed = *seed
	// Fail fast on inconsistent flags, before any graph loading.
	if err := opt.Validate(); err != nil {
		return err
	}

	loadStart := time.Now()
	g, err := nrp.LoadGraph(*input, *directed)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loaded %d nodes, %d edges in %v\n", g.N, g.NumEdges, time.Since(loadStart).Round(time.Millisecond))

	var runOpts []nrp.RunOption
	if *progress {
		runOpts = append(runOpts, nrp.WithProgress(func(ev nrp.ProgressEvent) {
			fmt.Fprintf(os.Stderr, "  [%v] %s %d/%d\n", ev.Elapsed.Round(time.Millisecond), ev.Phase, ev.Step, ev.Total)
		}))
	}

	var emb *nrp.Embedding
	var stats *nrp.Stats
	switch *method {
	case "nrp":
		emb, stats, err = nrp.EmbedCtx(ctx, g, opt, runOpts...)
	case "approxppr":
		emb, stats, err = nrp.EmbedPPRCtx(ctx, g, opt, runOpts...)
	default:
		return fmt.Errorf("unknown method %q (want nrp or approxppr)", *method)
	}
	if err != nil {
		if ctx.Err() != nil && stats != nil {
			fmt.Fprintf(os.Stderr, "cancelled after %v\n", stats.Total.Round(time.Millisecond))
		}
		return err
	}
	stats.Render(os.Stderr)

	f, err := os.Create(*output)
	if err != nil {
		return err
	}
	if err := emb.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// loadSearcher resolves the -embedding/-index flag pair shared by the
// topk subcommand: a snapshot is loaded as built (serving knobs may
// override its stored configuration), a raw embedding is indexed on the
// fly with the requested backend. includeSelf is a pointer so that only
// an explicitly set flag overrides a snapshot's stored choice.
func loadSearcher(embPath, indexPath, backendName string, backendSet bool, shards, rerank int, includeSelf *bool) (nrp.Searcher, error) {
	if (embPath == "") == (indexPath == "") {
		return nil, fmt.Errorf("exactly one of -embedding and -index is required")
	}
	if indexPath != "" {
		if backendSet {
			return nil, fmt.Errorf("-backend is baked into the snapshot; it cannot be combined with -index")
		}
		f, err := os.Open(indexPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		var opts []nrp.IndexOption
		if shards > 0 {
			opts = append(opts, nrp.WithShards(shards))
		}
		if rerank > 0 {
			opts = append(opts, nrp.WithRerank(rerank))
		}
		if includeSelf != nil {
			opts = append(opts, nrp.WithIncludeSelf(*includeSelf))
		}
		return nrp.LoadIndex(f, opts...)
	}
	backend, err := nrp.ParseBackend(backendName)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(embPath)
	if err != nil {
		return nil, err
	}
	emb, err := nrp.LoadEmbedding(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	opts := []nrp.IndexOption{
		nrp.WithBackend(backend),
		nrp.WithShards(shards),
	}
	if includeSelf != nil {
		opts = append(opts, nrp.WithIncludeSelf(*includeSelf))
	}
	if rerank > 0 {
		opts = append(opts, nrp.WithRerank(rerank))
	}
	return nrp.BuildIndex(emb, opts...)
}

func runTopK(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("nrp topk", flag.ContinueOnError)
	var (
		embPath     = fs.String("embedding", "", "embedding file written by an embed run")
		indexPath   = fs.String("index", "", "index snapshot written by `nrp index` (alternative to -embedding)")
		source      = fs.Int("source", -1, "query source node id (required)")
		k           = fs.Int("k", 10, "number of neighbors to return")
		backendName = fs.String("backend", "exact", "query backend: exact, quantized or pruned (with -embedding)")
		shards      = fs.Int("shards", 0, "scan shards (0 = all cores)")
		rerank      = fs.Int("rerank", 0, "quantized shortlist multiplier (0 = default)")
		includeSelf = fs.Bool("include-self", false, "admit the source node as a result")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *source < 0 {
		fs.Usage()
		return fmt.Errorf("-source is required")
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	var selfOverride *bool
	if set["include-self"] {
		selfOverride = includeSelf
	}
	ix, err := loadSearcher(*embPath, *indexPath, *backendName, set["backend"], *shards, *rerank, selfOverride)
	if err != nil {
		return err
	}

	start := time.Now()
	results, err := ix.TopKMany(ctx, []int{*source}, *k)
	if err != nil {
		return err
	}
	res := results[0]
	fmt.Fprintf(os.Stderr, "top-%d of node %d over %d nodes in %v (scanned %d, pruned %d, reranked %d)\n",
		len(res.Neighbors), *source, ix.N(), time.Since(start).Round(time.Microsecond),
		res.Stats.Scanned, res.Stats.Pruned, res.Stats.Reranked)
	for rank, nb := range res.Neighbors {
		fmt.Printf("%-4d %-10d %s\n", rank+1, nb.Node, strconv.FormatFloat(nb.Score, 'g', 6, 64))
	}
	return nil
}

// runIndexBuild builds a query index over a saved embedding and persists
// it as a snapshot for nrpserve (or later topk runs) to boot from.
func runIndexBuild(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("nrp index", flag.ContinueOnError)
	var (
		embPath     = fs.String("embedding", "", "embedding file written by an embed run (required)")
		output      = fs.String("output", "", "output index snapshot file (required)")
		backendName = fs.String("backend", "quantized", "index backend: exact, quantized or pruned")
		shards      = fs.Int("shards", 0, "scan shards to record in the snapshot (0 = all cores at load time)")
		rerank      = fs.Int("rerank", 0, "quantized shortlist multiplier (0 = default)")
		includeSelf = fs.Bool("include-self", false, "admit query nodes as their own results")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *embPath == "" || *output == "" {
		fs.Usage()
		return fmt.Errorf("-embedding and -output are required")
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	backend, err := nrp.ParseBackend(*backendName)
	if err != nil {
		return err
	}
	f, err := os.Open(*embPath)
	if err != nil {
		return err
	}
	emb, err := nrp.LoadEmbedding(f)
	f.Close()
	if err != nil {
		return err
	}

	start := time.Now()
	opts := []nrp.IndexOption{
		nrp.WithBackend(backend),
		nrp.WithShards(*shards),
		nrp.WithIncludeSelf(*includeSelf),
	}
	if *rerank > 0 {
		opts = append(opts, nrp.WithRerank(*rerank))
	}
	ix, err := nrp.BuildIndex(emb, opts...)
	if err != nil {
		return err
	}
	out, err := os.Create(*output)
	if err != nil {
		return err
	}
	if err := nrp.SaveIndex(out, ix); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "built %s index over %d nodes in %v -> %s\n",
		backend, ix.N(), time.Since(start).Round(time.Millisecond), *output)
	return nil
}
