// Command benchcmp is the CI benchmark-regression gate: it compares
// fresh BENCH_*.json records (written by `go test -bench`, see
// bench_test.go) against committed baselines and fails when a gated
// metric regresses beyond the tolerance.
//
// Usage:
//
//	benchcmp -baseline bench/baseline [-current .] [-tolerance 0.25]
//	         [-relative-only] [-files BENCH_topk.json,BENCH_ingest.json]
//	         [-write-baseline]
//
// Every *.json record in the baseline directory with a known schema is
// compared by default. Metrics are either relative (speedups, AUC —
// machine-independent, safe to gate against a baseline recorded on
// different hardware) or absolute (QPS, wall milliseconds — only
// comparable on similar hosts). CI passes -relative-only; when
// refreshing baselines on your own machine, run without it for full
// coverage. Exit status: 0 clean, 1 regression detected, 2 usage or I/O
// error.
//
// To update the baselines after an intentional performance change, run
// the gated benchmarks and let -write-baseline validate each fresh
// record against its schema before copying it over the committed one:
//
//	GOMAXPROCS=4 go test -run '^$' -bench 'TopK|DynamicRefresh|EmbedBuild|Ingest|PPRQuery' -benchtime 1x -timeout 40m .
//	go run ./cmd/benchcmp -write-baseline
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/nrp-embed/nrp/internal/benchgate"
)

func main() {
	regressed, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	if regressed {
		os.Exit(1)
	}
}

func run(args []string, out *os.File) (regressed bool, err error) {
	fs := flag.NewFlagSet("benchcmp", flag.ContinueOnError)
	var (
		baselineDir  = fs.String("baseline", "bench/baseline", "directory of committed baseline records")
		currentDir   = fs.String("current", ".", "directory holding freshly produced records")
		tolerance    = fs.Float64("tolerance", 0.25, "allowed fractional regression per metric")
		relativeOnly = fs.Bool("relative-only", false, "gate machine-independent metrics only (for CI against foreign baselines)")
		files        = fs.String("files", "", "comma-separated record names to compare (default: every known record in -baseline)")
		writeBase    = fs.Bool("write-baseline", false, "validate the fresh records in -current and install them as the new baselines instead of gating")
	)
	if err := fs.Parse(args); err != nil {
		return false, err
	}

	// -write-baseline adopts the current records: the source of names is
	// what the benchmarks just produced, not what the baseline holds, so
	// a newly added record gets its first baseline here.
	scanDir := *baselineDir
	if *writeBase {
		scanDir = *currentDir
	}
	var names []string
	if *files != "" {
		names = strings.Split(*files, ",")
	} else {
		entries, err := os.ReadDir(scanDir)
		if err != nil {
			return false, fmt.Errorf("reading %s: %w", scanDir, err)
		}
		for _, e := range entries {
			if !e.IsDir() && benchgate.Known(e.Name()) {
				names = append(names, e.Name())
			}
		}
		sort.Strings(names)
	}
	if len(names) == 0 {
		return false, fmt.Errorf("no known benchmark records in %s", scanDir)
	}

	if *writeBase {
		return false, writeBaselines(names, *currentDir, *baselineDir, out)
	}

	var all []benchgate.Delta
	for _, name := range names {
		name = strings.TrimSpace(name)
		base, err := extractFile(filepath.Join(*baselineDir, name), name)
		if err != nil {
			return false, err
		}
		cur, err := extractFile(filepath.Join(*currentDir, name), name)
		if err != nil {
			return false, fmt.Errorf("%w (did the benchmark that writes %s run?)", err, name)
		}
		deltas, err := benchgate.Compare(base, cur, *tolerance, *relativeOnly)
		if err != nil {
			return false, err
		}
		all = append(all, deltas...)
	}

	fmt.Fprintf(out, "%-18s %-28s %12s %12s %8s  %s\n",
		"record", "metric", "baseline", "current", "change", "status")
	for _, d := range all {
		status := "ok"
		switch {
		case d.Regressed:
			status = fmt.Sprintf("REGRESSED (tolerance %.0f%%)", 100*d.Tolerance)
		case d.Skipped:
			status = "skipped (absolute metric)"
		case d.Change > d.Tolerance:
			status = "improved"
		}
		fmt.Fprintf(out, "%-18s %-28s %12.4g %12.4g %+7.1f%%  %s\n",
			d.Metric.File, d.Metric.Name, d.Baseline, d.Metric.Value, 100*d.Change, status)
	}
	if n := benchgate.Regressions(all); n > 0 {
		fmt.Fprintf(out, "\n%d metric(s) regressed beyond tolerance\n", n)
		return true, nil
	}
	fmt.Fprintf(out, "\nall gated metrics within tolerance\n")
	return false, nil
}

// writeBaselines installs fresh records as the committed baselines. Each
// record must pass schema extraction first — a half-written or zeroed
// record would otherwise poison every future gate run.
func writeBaselines(names []string, currentDir, baselineDir string, out *os.File) error {
	for _, name := range names {
		name = strings.TrimSpace(name)
		src := filepath.Join(currentDir, name)
		data, err := os.ReadFile(src)
		if err != nil {
			return fmt.Errorf("%w (did the benchmark that writes %s run?)", err, name)
		}
		ms, err := benchgate.Extract(name, data)
		if err != nil {
			return err
		}
		for _, m := range ms {
			if m.Value == 0 {
				return fmt.Errorf("%s: metric %q is zero; refusing to install a baseline the gate would reject", name, m.Name)
			}
		}
		dst := filepath.Join(baselineDir, name)
		if err := os.WriteFile(dst, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (%d metrics)\n", dst, len(ms))
	}
	return nil
}

func extractFile(path, name string) ([]benchgate.Metric, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return benchgate.Extract(name, data)
}
