// Command benchcmp is the CI benchmark-regression gate: it compares
// fresh BENCH_*.json records (written by `go test -bench`, see
// bench_test.go) against committed baselines and fails when a gated
// metric regresses beyond the tolerance.
//
// Usage:
//
//	benchcmp -baseline bench/baseline [-current .] [-tolerance 0.25]
//	         [-relative-only] [-files BENCH_topk.json,BENCH_ingest.json]
//
// Every *.json record in the baseline directory with a known schema is
// compared by default. Metrics are either relative (speedups, AUC —
// machine-independent, safe to gate against a baseline recorded on
// different hardware) or absolute (QPS, wall milliseconds — only
// comparable on similar hosts). CI passes -relative-only; when
// refreshing baselines on your own machine, run without it for full
// coverage. Exit status: 0 clean, 1 regression detected, 2 usage or I/O
// error.
//
// To update the baselines after an intentional performance change:
//
//	GOMAXPROCS=4 go test -run '^$' -bench 'TopK|DynamicRefresh|EmbedBuild|Ingest' -benchtime 1x -timeout 40m .
//	cp BENCH_*.json bench/baseline/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/nrp-embed/nrp/internal/benchgate"
)

func main() {
	regressed, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	if regressed {
		os.Exit(1)
	}
}

func run(args []string, out *os.File) (regressed bool, err error) {
	fs := flag.NewFlagSet("benchcmp", flag.ContinueOnError)
	var (
		baselineDir  = fs.String("baseline", "bench/baseline", "directory of committed baseline records")
		currentDir   = fs.String("current", ".", "directory holding freshly produced records")
		tolerance    = fs.Float64("tolerance", 0.25, "allowed fractional regression per metric")
		relativeOnly = fs.Bool("relative-only", false, "gate machine-independent metrics only (for CI against foreign baselines)")
		files        = fs.String("files", "", "comma-separated record names to compare (default: every known record in -baseline)")
	)
	if err := fs.Parse(args); err != nil {
		return false, err
	}

	var names []string
	if *files != "" {
		names = strings.Split(*files, ",")
	} else {
		entries, err := os.ReadDir(*baselineDir)
		if err != nil {
			return false, fmt.Errorf("reading baseline directory: %w", err)
		}
		for _, e := range entries {
			if !e.IsDir() && benchgate.Known(e.Name()) {
				names = append(names, e.Name())
			}
		}
		sort.Strings(names)
	}
	if len(names) == 0 {
		return false, fmt.Errorf("no known baseline records in %s", *baselineDir)
	}

	var all []benchgate.Delta
	for _, name := range names {
		name = strings.TrimSpace(name)
		base, err := extractFile(filepath.Join(*baselineDir, name), name)
		if err != nil {
			return false, err
		}
		cur, err := extractFile(filepath.Join(*currentDir, name), name)
		if err != nil {
			return false, fmt.Errorf("%w (did the benchmark that writes %s run?)", err, name)
		}
		deltas, err := benchgate.Compare(base, cur, *tolerance, *relativeOnly)
		if err != nil {
			return false, err
		}
		all = append(all, deltas...)
	}

	fmt.Fprintf(out, "%-18s %-28s %12s %12s %8s  %s\n",
		"record", "metric", "baseline", "current", "change", "status")
	for _, d := range all {
		status := "ok"
		switch {
		case d.Regressed:
			status = fmt.Sprintf("REGRESSED (tolerance %.0f%%)", 100*d.Tolerance)
		case d.Skipped:
			status = "skipped (absolute metric)"
		case d.Change > d.Tolerance:
			status = "improved"
		}
		fmt.Fprintf(out, "%-18s %-28s %12.4g %12.4g %+7.1f%%  %s\n",
			d.Metric.File, d.Metric.Name, d.Baseline, d.Metric.Value, 100*d.Change, status)
	}
	if n := benchgate.Regressions(all); n > 0 {
		fmt.Fprintf(out, "\n%d metric(s) regressed beyond tolerance\n", n)
		return true, nil
	}
	fmt.Fprintf(out, "\nall gated metrics within tolerance\n")
	return false, nil
}

func extractFile(path, name string) ([]benchgate.Metric, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return benchgate.Extract(name, data)
}
