package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const pprRecord = `{"n":100000,"m":500000,"queries":8,"seeds_per_query":4,"k":10,
  "epsilon":0.5,"delta":0.0001,"power_iters":100,"walks_per_node":16,
  "fora_ms":40,"fora_plus_ms":28,"power_ms":900,
  "speedup_vs_power":22.5,"index_speedup":1.43,"max_rel_err":0.11}`

// TestWriteBaseline exercises the baseline-refresh path end to end: a
// fresh record with no committed baseline is validated and installed,
// and a subsequent gate run against the new baseline passes clean.
func TestWriteBaseline(t *testing.T) {
	current := t.TempDir()
	baseline := t.TempDir()
	if err := os.WriteFile(filepath.Join(current, "BENCH_ppr.json"), []byte(pprRecord), 0o644); err != nil {
		t.Fatal(err)
	}

	out, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()

	regressed, err := run([]string{"-write-baseline", "-current", current, "-baseline", baseline}, out)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatal("write-baseline reported a regression")
	}
	installed, err := os.ReadFile(filepath.Join(baseline, "BENCH_ppr.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(installed) != pprRecord {
		t.Fatal("installed baseline differs from the current record")
	}

	// The freshly installed baseline gates the same record clean.
	regressed, err = run([]string{"-current", current, "-baseline", baseline}, out)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatal("identical record regressed against its own baseline")
	}
}

// TestWriteBaselineRejectsBrokenRecords: neither a schema mismatch nor a
// zeroed metric (both signs of a renamed field or an aborted run) may
// become a committed baseline.
func TestWriteBaselineRejectsBrokenRecords(t *testing.T) {
	out, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()

	for name, record := range map[string]string{
		"malformed":   `{"speedup_vs_power":`,
		"zero metric": strings.Replace(pprRecord, `"speedup_vs_power":22.5`, `"speedup_vs_power":0`, 1),
	} {
		current := t.TempDir()
		baseline := t.TempDir()
		if err := os.WriteFile(filepath.Join(current, "BENCH_ppr.json"), []byte(record), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := run([]string{"-write-baseline", "-current", current, "-baseline", baseline}, out); err == nil {
			t.Fatalf("%s record installed as baseline", name)
		}
		if _, err := os.Stat(filepath.Join(baseline, "BENCH_ppr.json")); !os.IsNotExist(err) {
			t.Fatalf("%s record left a baseline file behind", name)
		}
	}

	// An empty current directory is an error, not a silent no-op.
	if _, err := run([]string{"-write-baseline", "-current", t.TempDir(), "-baseline", t.TempDir()}, out); err == nil {
		t.Fatal("empty current directory accepted")
	}
}
