// Command datagen generates the synthetic datasets used by the experiment
// harness (or custom graphs) as edge-list/label files or NRPG binary
// snapshots.
//
// Usage:
//
//	datagen -preset wiki-sim -out wiki            # wiki.edges + wiki.labels
//	datagen -type er -n 100000 -m 1000000 -out er # custom Erdős–Rényi
//	datagen -type sbm -n 10000 -m 200000 -labels 20 -directed -out sbm
//	datagen -type sbm -n 1000000 -m 10000000 -format nrpg -out big  # big.nrpg
//	datagen -list                                 # preset names
//
// -format selects the output: "edges" (default) writes <out>.edges plus
// <out>.labels when the generator labels nodes; "nrpg" writes a single
// <out>.nrpg binary snapshot (labels bundled inside) that nrp and
// nrpserve memory-map at boot; "both" writes all of them.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"github.com/nrp-embed/nrp/internal/experiments"
	"github.com/nrp-embed/nrp/internal/gio"
	"github.com/nrp-embed/nrp/internal/graph"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	var (
		preset   = fs.String("preset", "", "dataset preset from the experiment harness")
		list     = fs.Bool("list", false, "list presets and exit")
		kind     = fs.String("type", "sbm", "generator for custom graphs: sbm or er")
		n        = fs.Int("n", 10000, "number of nodes")
		m        = fs.Int("m", 100000, "number of edges")
		labels   = fs.Int("labels", 20, "number of label classes (sbm)")
		directed = fs.Bool("directed", false, "generate a directed graph")
		scale    = fs.Float64("scale", 1, "preset size multiplier")
		seed     = fs.Int64("seed", 1, "random seed")
		format   = fs.String("format", "edges", "output format: edges, nrpg or both")
		out      = fs.String("out", "", "output path prefix (required)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, d := range experiments.Datasets {
			fmt.Printf("%-16s stand-in for %-12s n=%-8d m=%-8d directed=%v labels=%d\n",
				d.Name, d.PaperName, d.N, d.M, d.Directed, d.Labels)
		}
		return nil
	}
	if *out == "" {
		fs.Usage()
		return fmt.Errorf("-out is required")
	}
	// Validate -format before generating: a typo must not cost a
	// minutes-long million-edge generation.
	writeEdges := *format == "edges" || *format == "both"
	writeNRPG := *format == "nrpg" || *format == "both"
	if !writeEdges && !writeNRPG {
		return fmt.Errorf("unknown -format %q (want edges, nrpg or both)", *format)
	}

	// Generation is monolithic; honor a pre-generation interrupt and skip
	// writing outputs if the signal landed during generation.
	if err := ctx.Err(); err != nil {
		return err
	}
	var g *graph.Graph
	var err error
	switch {
	case *preset != "":
		ds, ferr := experiments.FindDataset(*preset)
		if ferr != nil {
			return ferr
		}
		g, err = ds.Gen(*scale)
	case *kind == "er":
		g, err = graph.GenErdosRenyi(*n, *m, *directed, *seed)
	case *kind == "sbm":
		g, err = graph.GenSBM(graph.SBMConfig{
			N: *n, M: *m, Communities: *labels, Directed: *directed, Seed: *seed,
		})
	default:
		return fmt.Errorf("unknown -type %q (want sbm or er)", *kind)
	}
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	if writeEdges {
		edgePath := *out + ".edges"
		f, err := os.Create(edgePath)
		if err != nil {
			return err
		}
		if err := graph.WriteEdgeList(f, g); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d nodes, %d edges)\n", edgePath, g.N, g.NumEdges)

		if g.Labels != nil {
			labelPath := *out + ".labels"
			lf, err := os.Create(labelPath)
			if err != nil {
				return err
			}
			if err := graph.WriteLabels(lf, g.Labels); err != nil {
				lf.Close()
				return err
			}
			if err := lf.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s (%d classes)\n", labelPath, g.NumLabels)
		}
	}
	if writeNRPG {
		snapPath := *out + ".nrpg"
		sf, err := os.Create(snapPath)
		if err != nil {
			return err
		}
		if err := gio.Save(sf, g, nil); err != nil {
			sf.Close()
			return err
		}
		if err := sf.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d nodes, %d edges, %d label classes)\n",
			snapPath, g.N, g.NumEdges, g.NumLabels)
	}
	return nil
}
