package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"github.com/nrp-embed/nrp"
)

func TestDatagenSBMAndReload(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "demo")
	if err := run(context.Background(), []string{"-type", "sbm", "-n", "80", "-m", "300", "-labels", "4", "-out", out, "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
	g, err := nrp.LoadGraph(out+".edges", false)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 80 || g.NumEdges != 300 {
		t.Fatalf("reloaded n=%d m=%d", g.N, g.NumEdges)
	}
	if _, err := os.Stat(out + ".labels"); err != nil {
		t.Fatalf("labels file missing: %v", err)
	}
}

func TestDatagenERNoLabels(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "er")
	if err := run(context.Background(), []string{"-type", "er", "-n", "50", "-m", "100", "-out", out}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out + ".labels"); err == nil {
		t.Fatal("ER graph should not emit labels")
	}
}

func TestDatagenValidation(t *testing.T) {
	if err := run(context.Background(), []string{"-type", "sbm", "-n", "10", "-m", "5"}); err == nil {
		t.Fatal("missing -out accepted")
	}
	if err := run(context.Background(), []string{"-type", "bogus", "-out", "/tmp/x"}); err == nil {
		t.Fatal("unknown type accepted")
	}
	if err := run(context.Background(), []string{"-preset", "nope", "-out", "/tmp/x"}); err == nil {
		t.Fatal("unknown preset accepted")
	}
	if err := run(context.Background(), []string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestDatagenNRPGFormat(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "snap")
	if err := run(context.Background(), []string{
		"-type", "sbm", "-n", "70", "-m", "250", "-labels", "3",
		"-format", "nrpg", "-out", out, "-seed", "4"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out + ".edges"); err == nil {
		t.Fatal("-format nrpg also wrote an edge list")
	}
	g, err := nrp.LoadGraph(out+".nrpg", false) // sniffed as a snapshot
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 70 || g.NumEdges != 250 || g.NumLabels != 3 {
		t.Fatalf("reloaded n=%d m=%d labels=%d", g.N, g.NumEdges, g.NumLabels)
	}

	both := filepath.Join(dir, "both")
	if err := run(context.Background(), []string{
		"-type", "sbm", "-n", "70", "-m", "250", "-format", "both", "-out", both}); err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{".edges", ".labels", ".nrpg"} {
		if _, err := os.Stat(both + suffix); err != nil {
			t.Fatalf("-format both missing %s: %v", suffix, err)
		}
	}
	ge, err := nrp.LoadGraph(both+".edges", false)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := nrp.LoadGraph(both+".nrpg", false)
	if err != nil {
		t.Fatal(err)
	}
	if ge.N != gb.N || ge.NumEdges != gb.NumEdges {
		t.Fatalf("edge list (n=%d m=%d) and snapshot (n=%d m=%d) disagree",
			ge.N, ge.NumEdges, gb.N, gb.NumEdges)
	}

	if err := run(context.Background(), []string{
		"-type", "sbm", "-n", "10", "-m", "20", "-format", "bogus", "-out", out}); err == nil {
		t.Fatal("bogus -format accepted")
	}
}
