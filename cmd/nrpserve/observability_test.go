package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"github.com/nrp-embed/nrp"
	"github.com/nrp-embed/nrp/internal/serve"
	"github.com/nrp-embed/nrp/internal/telemetry"
)

// TestMain lowers the default request-log level so the e2e tests in this
// package don't spray one line per HTTP call onto stderr.
func TestMain(m *testing.M) {
	defaultLogLevel = "error"
	os.Exit(m.Run())
}

// TestObservabilityFlagsEndToEnd boots a server with rate limiting and
// coalescing on and checks the full observability surface over HTTP:
// /metrics parses, healthz carries build info, ?stats=1 gates the query
// stats, and the limiter 429s with Retry-After.
func TestObservabilityFlagsEndToEnd(t *testing.T) {
	dir := t.TempDir()
	_, indexPath, _ := writeFixtures(t, dir)
	cfg, err := newServerFromFlags(context.Background(), []string{
		"-index", indexPath, "-rate-limit", "2", "-rate-burst", "3", "-coalesce",
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(cfg.server.Handler())
	defer ts.Close()

	get := func(path string) (int, http.Header, []byte) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, resp.Header, raw
	}

	// Stats are absent by default, present with ?stats=1.
	code, _, raw := get("/v1/topk?u=3&k=5")
	if code != http.StatusOK {
		t.Fatalf("topk status %d: %s", code, raw)
	}
	var tk serve.TopKResponse
	if err := json.Unmarshal(raw, &tk); err != nil {
		t.Fatal(err)
	}
	if tk.Results[0].Stats != nil {
		t.Fatal("stats present without ?stats=1")
	}
	code, _, raw = get("/v1/topk?u=3&k=5&stats=1")
	if code != http.StatusOK {
		t.Fatalf("topk stats status %d: %s", code, raw)
	}
	tk = serve.TopKResponse{}
	if err := json.Unmarshal(raw, &tk); err != nil {
		t.Fatal(err)
	}
	if tk.Results[0].Stats == nil {
		t.Fatalf("stats missing with ?stats=1: %s", raw)
	}

	// Burst 3, two spent: one more passes, the fourth 429s.
	if code, _, raw = get("/v1/topk?u=1&k=3"); code != http.StatusOK {
		t.Fatalf("third request status %d: %s", code, raw)
	}
	code, hdr, _ := get("/v1/topk?u=1&k=3")
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-burst status %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// /metrics is exempt from limiting, parses strictly, and shows the
	// traffic above (three 200s, one 429, coalesced singles).
	code, hdr, raw = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if !strings.Contains(hdr.Get("Content-Type"), "text/plain") {
		t.Fatalf("metrics content type %q", hdr.Get("Content-Type"))
	}
	samples, err := telemetry.ParseText(string(raw))
	if err != nil {
		t.Fatalf("metrics output invalid: %v", err)
	}
	if got := samples[`nrp_http_requests_total{endpoint="topk",code="200"}`]; got != 3 {
		t.Errorf("topk 200s = %v, want 3", got)
	}
	if got := samples[`nrp_http_requests_total{endpoint="topk",code="429"}`]; got != 1 {
		t.Errorf("topk 429s = %v, want 1", got)
	}
	if got := samples[`nrp_http_rate_limited_total`]; got != 1 {
		t.Errorf("rate_limited_total = %v, want 1", got)
	}
	if got := samples[`nrp_coalesce_requests_total`]; got != 3 {
		t.Errorf("coalesce_requests_total = %v, want 3", got)
	}

	// healthz reports build info and uptime.
	code, _, raw = get("/v1/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	var hz serve.HealthzResponse
	if err := json.Unmarshal(raw, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Version == "" || hz.Revision == "" || hz.UptimeSeconds < 0 {
		t.Fatalf("healthz build info missing: %+v", hz)
	}
}

// TestJSONRequestLog asserts -log-format=json emits one machine-readable
// line per request with the promised fields.
func TestJSONRequestLog(t *testing.T) {
	dir := t.TempDir()
	_, indexPath, _ := writeFixtures(t, dir)
	if _, err := newServerFromFlags(context.Background(), []string{"-index", indexPath, "-log-format", "json"}); err != nil {
		t.Fatal(err) // the flag itself must be accepted
	}
	// Capture the line itself with a logger writing to a buffer.
	f, err := os.Open(indexPath)
	if err != nil {
		t.Fatal(err)
	}
	s, err := nrp.LoadIndex(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	logged := serve.NewServer(s, serve.Config{
		Backend: "quantized",
		Logger:  slog.New(slog.NewJSONHandler(&buf, nil)),
	})
	ts := httptest.NewServer(logged.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/topk?u=2&k=4")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	line := struct {
		Msg      string  `json:"msg"`
		Endpoint string  `json:"endpoint"`
		Method   string  `json:"method"`
		Status   int     `json:"status"`
		Duration float64 `json:"duration"`
		K        int     `json:"k"`
		Client   string  `json:"client"`
	}{}
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("request log is not one JSON line: %v\n%s", err, buf.String())
	}
	if line.Msg != "request" || line.Endpoint != "topk" || line.Method != "GET" ||
		line.Status != 200 || line.K != 4 || line.Client == "" {
		t.Fatalf("request log line %+v (%s)", line, buf.String())
	}
}

// TestLogFlagValidation rejects unknown formats and levels.
func TestLogFlagValidation(t *testing.T) {
	dir := t.TempDir()
	_, indexPath, _ := writeFixtures(t, dir)
	for _, tc := range [][]string{
		{"-index", indexPath, "-log-format", "yaml"},
		{"-index", indexPath, "-log-level", "chatty"},
	} {
		if _, err := newServerFromFlags(context.Background(), tc); err == nil {
			t.Fatalf("args %v accepted", tc)
		}
	}
}
