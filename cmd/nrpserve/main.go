// Command nrpserve serves NRP proximity queries over HTTP: top-k
// retrieval and batch scoring over a saved index snapshot (or a raw
// embedding indexed at boot), with pluggable Searcher backends.
//
// Usage:
//
//	nrpserve -index index.bin [-addr :8080] [-shards 0] [-drain 10s]
//	nrpserve -embedding emb.bin -backend quantized [-shards 0] [-rerank 4] [-include-self]
//
// With -index the snapshot's build-time preprocessing (quantization
// codes, norm permutation) is loaded as-is — no re-quantizing at boot;
// -shards/-rerank override the snapshot's serving configuration. With
// -embedding the index is built in memory at boot with the -backend of
// choice.
//
// Endpoints (JSON in/out):
//
//	GET  /v1/healthz
//	GET  /v1/topk?u=42&k=10
//	POST /v1/topk   {"us":[1,2,3],"k":10}
//	POST /v1/score  {"pairs":[[0,1],[2,3]]}
//
// On SIGINT/SIGTERM the server stops accepting connections and drains
// in-flight queries for up to -drain before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/nrp-embed/nrp"
	"github.com/nrp-embed/nrp/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nrpserve:", err)
		os.Exit(1)
	}
}

type config struct {
	server *serve.Server
	addr   string
	drain  time.Duration
}

// newServerFromFlags parses args, loads or builds the Searcher, and
// returns the wrapped HTTP server; separated from run so tests can drive
// the handler without binding a port.
func newServerFromFlags(args []string) (*config, error) {
	fs := flag.NewFlagSet("nrpserve", flag.ContinueOnError)
	var (
		indexPath   = fs.String("index", "", "index snapshot written by `nrp index` or nrp.SaveIndex")
		embPath     = fs.String("embedding", "", "embedding file to index at boot (alternative to -index)")
		backendName = fs.String("backend", "exact", "backend for -embedding: exact, quantized or pruned")
		shards      = fs.Int("shards", 0, "scan shards per query (0 = all cores)")
		rerank      = fs.Int("rerank", 0, "quantized shortlist multiplier (0 = default/snapshot value)")
		includeSelf = fs.Bool("include-self", false, "admit the query node as a result (overrides a snapshot's stored choice)")
		addr        = fs.String("addr", ":8080", "listen address")
		drain       = fs.Duration("drain", 10*time.Second, "in-flight query drain window on shutdown")
		maxK        = fs.Int("max-k", 1000, "largest k a request may ask for")
		maxBatch    = fs.Int("max-batch", 1024, "largest batch of sources or pairs per request")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if (*indexPath == "") == (*embPath == "") {
		fs.Usage()
		return nil, fmt.Errorf("exactly one of -index and -embedding is required")
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })

	var searcher nrp.Searcher
	switch {
	case *indexPath != "":
		if set["backend"] {
			return nil, fmt.Errorf("-backend is baked into the snapshot; it cannot be combined with -index")
		}
		f, err := os.Open(*indexPath)
		if err != nil {
			return nil, err
		}
		var opts []nrp.IndexOption
		if *shards > 0 {
			opts = append(opts, nrp.WithShards(*shards))
		}
		if *rerank > 0 {
			opts = append(opts, nrp.WithRerank(*rerank))
		}
		if set["include-self"] {
			opts = append(opts, nrp.WithIncludeSelf(*includeSelf))
		}
		searcher, err = nrp.LoadIndex(f, opts...)
		f.Close()
		if err != nil {
			return nil, err
		}
	default:
		backend, err := nrp.ParseBackend(*backendName)
		if err != nil {
			return nil, err
		}
		f, err := os.Open(*embPath)
		if err != nil {
			return nil, err
		}
		emb, err := nrp.LoadEmbedding(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		opts := []nrp.IndexOption{
			nrp.WithBackend(backend),
			nrp.WithShards(*shards),
			nrp.WithIncludeSelf(*includeSelf),
		}
		if *rerank > 0 {
			opts = append(opts, nrp.WithRerank(*rerank))
		}
		searcher, err = nrp.BuildIndex(emb, opts...)
		if err != nil {
			return nil, err
		}
	}

	label := "unknown"
	if b, ok := searcher.(interface{ Backend() nrp.Backend }); ok {
		label = b.Backend().String()
	}
	sv := serve.NewServer(searcher, serve.Config{Backend: label, MaxK: *maxK, MaxBatch: *maxBatch})
	return &config{server: sv, addr: *addr, drain: *drain}, nil
}

func run(ctx context.Context, args []string) error {
	cfg, err := newServerFromFlags(args)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "nrpserve: listening on %s (drain %v)\n", ln.Addr(), cfg.drain)
	return serve.Serve(ctx, ln, cfg.server.Handler(), cfg.drain)
}
