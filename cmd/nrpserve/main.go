// Command nrpserve serves NRP proximity queries over HTTP: top-k
// retrieval and batch scoring over a saved index snapshot, a raw
// embedding indexed at boot, or — for evolving graphs — a live index
// embedded from an edge list at boot and refreshed in place as updates
// stream in.
//
// Usage:
//
//	nrpserve -index index.bin [-addr :8080] [-shards 0] [-drain 10s]
//	         [-ef-search 64] [-hnsw-seed-rows 0] [-shard i/N]
//	nrpserve -embedding emb.bin -backend quantized [-shards 0] [-rerank 4] [-include-self]
//	nrpserve -graph graph.txt [-directed] [-dim 128] [-seed 1] [-backend exact]
//	         [-refresh-policy incremental] [-refresh-interval 30s] [-threads 0]
//
// With -index the snapshot's build-time preprocessing (quantization
// codes, norm permutation, the HNSW graph) is loaded as-is — no
// re-quantizing or graph rebuild at boot; -shards/-rerank/-ef-search/
// -hnsw-seed-rows override the snapshot's serving configuration (the
// HNSW knobs are rejected unless the snapshot holds an HNSW index). With
// -embedding the index is built in memory at boot with the -backend of
// choice — -backend hnsw plus -hnsw-quant builds the sublinear graph
// backend with the int8 coarse stage.
//
// With -graph the server embeds the graph at boot and accepts live edge
// updates. The file may be a text edge list or an NRPG binary snapshot
// (`nrp convert`), sniffed by magic bytes; snapshots are memory-mapped,
// so the graph itself loads in milliseconds and its pages are shared
// with other processes serving the same file (-directed applies to text
// input only — a snapshot stores its own orientation). POST /v1/update
// stages batched insertions/removals and POST
// /v1/refresh brings the embedding in sync under -refresh-policy (full,
// incremental or staleness) and atomically swaps the serving index —
// in-flight queries finish on the old index, zero downtime. A positive
// -refresh-interval additionally refreshes in the background whenever
// updates are pending.
//
// Endpoints (JSON in/out, except /metrics):
//
//	GET  /v1/healthz
//	GET  /v1/topk?u=42&k=10[&stats=1]
//	POST /v1/topk    {"us":[1,2,3],"k":10}
//	POST /v1/score   {"pairs":[[0,1],[2,3]]}
//	POST /v1/ppr     {"seeds":[1,2],"k":10}                (-graph only)
//	POST /v1/update  {"insert":[[0,1]],"remove":[[2,3]]}   (-graph only)
//	POST /v1/refresh {}                                    (-graph only)
//	GET  /metrics    Prometheus text exposition
//
// Observability and traffic protection: every request is counted and
// timed on /metrics and logged as one structured line (-log-format
// json|text, -log-level). -rate-limit R enables per-client-IP
// token-bucket limiting at R req/s (-rate-burst B tokens of burst; 429 +
// Retry-After beyond that). -coalesce aggregates concurrent
// single-source /v1/topk calls into one batched TopKMany pass,
// deduplicating hot sources — a throughput win under concurrent skewed
// traffic (see cmd/nrpload to measure it).
//
// A -graph server additionally answers online seed-set PPR queries with
// the FORA two-phase estimator at /v1/ppr; queries observe edges applied
// through /v1/update immediately, no refresh required. -ppr-alpha and
// -ppr-epsilon set the engine defaults; -ppr-walks N precomputes a FORA+
// walk index (N walk endpoints per node) at boot, and when the graph is
// an NRPG snapshot saved with a walk index (`nrp convert -walk-index`),
// that index is used without re-simulation.
//
// Sharded serving: -shard i/N (0-based) restricts top-k candidates to
// the i-th of N contiguous node-range slices while still loading the full
// snapshot, so /v1/score and any query source work unchanged. N such
// processes behind cmd/nrprouter answer exactly what one unsharded server
// would; the slice is advertised in /v1/healthz for the router to
// validate. -shard composes with -index and -embedding but not -graph or
// -backend hnsw (the HNSW beam search is global by construction).
//
// On SIGINT/SIGTERM the server stops accepting connections and drains
// in-flight queries for up to -drain before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/nrp-embed/nrp"
	"github.com/nrp-embed/nrp/internal/serve"
)

// defaultLogLevel seeds the -log-level flag; the test harness lowers it
// to "error" so e2e tests stay quiet without threading flags everywhere.
var defaultLogLevel = "info"

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nrpserve:", err)
		os.Exit(1)
	}
}

type config struct {
	server       *serve.Server
	live         *nrp.LiveIndex // nil unless booted with -graph
	graphCloser  io.Closer      // non-nil when -graph mapped an NRPG snapshot
	refreshEvery time.Duration
	addr         string
	drain        time.Duration
	logger       *slog.Logger
}

// newLogger builds the process logger from the -log-format/-log-level
// flags. Everything nrpserve prints — boot progress, per-request lines,
// background refresh outcomes — goes through it, so `-log-format=json`
// yields machine-parseable output end to end.
func newLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level: %w", err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format must be text or json, got %q", format)
	}
}

// newServerFromFlags parses args, loads or builds the Searcher, and
// returns the wrapped HTTP server; separated from run so tests can drive
// the handler without binding a port.
func newServerFromFlags(ctx context.Context, args []string) (*config, error) {
	fs := flag.NewFlagSet("nrpserve", flag.ContinueOnError)
	var (
		indexPath   = fs.String("index", "", "index snapshot written by `nrp index` or nrp.SaveIndex")
		embPath     = fs.String("embedding", "", "embedding file to index at boot (alternative to -index)")
		graphPath   = fs.String("graph", "", "edge-list file to embed at boot and serve live (alternative to -index/-embedding)")
		directed    = fs.Bool("directed", false, "treat -graph edges as directed")
		dim         = fs.Int("dim", 128, "embedding dimensionality for -graph (even)")
		seed        = fs.Int64("seed", 1, "random seed for -graph embedding")
		policyName  = fs.String("refresh-policy", "incremental", "live refresh policy for -graph: full, incremental or staleness")
		refreshIntv = fs.Duration("refresh-interval", 0, "background refresh period for -graph when updates are pending (0 = refresh only via /v1/refresh)")
		backendName = fs.String("backend", "exact", "backend for -embedding/-graph: exact, quantized, pruned or hnsw")
		shards      = fs.Int("shards", 0, "scan shards per query (0 = all cores)")
		shardSpec   = fs.String("shard", "", "serve one slice i/N of the node space, e.g. -shard 0/3 (scatter-gather via cmd/nrprouter; -index/-embedding only)")
		threads     = fs.Int("threads", 0, "worker threads for -graph embedding/refreshes and index builds (0 = all cores)")
		rerank      = fs.Int("rerank", 0, "quantized shortlist multiplier (0 = default/snapshot value)")
		efSearch    = fs.Int("ef-search", 0, "HNSW query beam width (default/snapshot value if unset)")
		seedRows    = fs.Int("hnsw-seed-rows", 0, "HNSW top-norm rows seeding each query's beam (default 4x ef-search if unset; 0 disables)")
		hnswQuant   = fs.Bool("hnsw-quant", false, "HNSW: score in-graph with the int8 quantized kernel, rerank exactly (-embedding/-graph only)")
		includeSelf = fs.Bool("include-self", false, "admit the query node as a result (overrides a snapshot's stored choice)")
		addr        = fs.String("addr", ":8080", "listen address")
		drain       = fs.Duration("drain", 10*time.Second, "in-flight query drain window on shutdown")
		maxK        = fs.Int("max-k", 1000, "largest k a request may ask for")
		maxBatch    = fs.Int("max-batch", 1024, "largest batch of sources, pairs, seeds or updates per request")
		pprWalks    = fs.Int("ppr-walks", 0, "FORA+ walk-index size for -graph: walks per node precomputed at boot (0 = use the snapshot's stored index, if any)")
		pprAlpha    = fs.Float64("ppr-alpha", 0, "PPR termination probability for /v1/ppr (0 = default 0.15)")
		pprEpsilon  = fs.Float64("ppr-epsilon", 0, "PPR relative error bound for /v1/ppr (0 = default 0.5)")
		logFormat   = fs.String("log-format", "text", "structured log format: text or json")
		logLevel    = fs.String("log-level", defaultLogLevel, "minimum log level: debug, info, warn or error (request lines log at info)")
		rateLimit   = fs.Float64("rate-limit", 0, "per-client requests/second; over-limit requests get 429 with Retry-After (0 = unlimited)")
		rateBurst   = fs.Int("rate-burst", 0, "per-client token-bucket burst (default max(1, rate-limit))")
		coalesce    = fs.Bool("coalesce", false, "aggregate concurrent single-source /v1/topk calls into one batched TopKMany pass")
		coalesceWin = fs.Duration("coalesce-window", 0, "how long a lone coalescing leader waits for concurrent callers before scanning (default 250µs, negative disables)")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		return nil, err
	}
	sources := 0
	for _, p := range []string{*indexPath, *embPath, *graphPath} {
		if p != "" {
			sources++
		}
	}
	if sources != 1 {
		fs.Usage()
		return nil, fmt.Errorf("exactly one of -index, -embedding and -graph is required")
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })

	shardIdx, shardCnt := -1, 0
	if *shardSpec != "" {
		if *graphPath != "" {
			return nil, fmt.Errorf("-shard requires a static index (-index or -embedding); a live -graph server re-embeds and cannot hold a stable slice")
		}
		if _, err := fmt.Sscanf(*shardSpec, "%d/%d", &shardIdx, &shardCnt); err != nil {
			return nil, fmt.Errorf("-shard must look like i/N, e.g. 0/3: %w", err)
		}
	}

	// HNSW options are forwarded only when explicitly set: the library
	// validates them against the backend (and, for snapshots, against
	// what is baked in), so a stray flag fails loudly instead of being
	// silently ignored.
	var hnswOpts []nrp.IndexOption
	if set["ef-search"] {
		hnswOpts = append(hnswOpts, nrp.WithEfSearch(*efSearch))
	}
	if set["hnsw-seed-rows"] {
		hnswOpts = append(hnswOpts, nrp.WithHNSWSeedRows(*seedRows))
	}
	if set["hnsw-quant"] {
		hnswOpts = append(hnswOpts, nrp.WithHNSWQuantized(*hnswQuant))
	}

	var searcher nrp.Searcher
	var live *nrp.LiveIndex
	var pprEngine *nrp.PPREngine
	var graphCloser io.Closer
	// Unmap a -graph snapshot if a later boot step fails: the CLI would
	// exit anyway, but tests (and any embedder) call this repeatedly.
	bootOK := false
	defer func() {
		if !bootOK && graphCloser != nil {
			graphCloser.Close()
		}
	}()
	switch {
	case *indexPath != "":
		if set["backend"] {
			return nil, fmt.Errorf("-backend is baked into the snapshot; it cannot be combined with -index")
		}
		f, err := os.Open(*indexPath)
		if err != nil {
			return nil, err
		}
		var opts []nrp.IndexOption
		if *shards > 0 {
			opts = append(opts, nrp.WithShards(*shards))
		}
		if *rerank > 0 {
			opts = append(opts, nrp.WithRerank(*rerank))
		}
		if set["include-self"] {
			opts = append(opts, nrp.WithIncludeSelf(*includeSelf))
		}
		if *shardSpec != "" {
			opts = append(opts, nrp.WithShardSlice(shardIdx, shardCnt))
		}
		opts = append(opts, hnswOpts...)
		searcher, err = nrp.LoadIndex(f, opts...)
		f.Close()
		if err != nil {
			return nil, err
		}
	case *graphPath != "":
		backend, err := nrp.ParseBackend(*backendName)
		if err != nil {
			return nil, err
		}
		policy, err := nrp.ParseRefreshPolicy(*policyName)
		if err != nil {
			return nil, err
		}
		// NRPG snapshots are memory-mapped: multi-gigabyte graphs boot in
		// milliseconds and share page cache across server processes; live
		// updates are copy-on-write, so the read-only mapping is safe. The
		// closer stays open for the server's lifetime. A snapshot saved
		// with a walk index hands it to the PPR engine for free.
		g, storedIdx, closer, err := nrp.OpenGraphIndexed(*graphPath, *directed)
		if err != nil {
			return nil, err
		}
		graphCloser = closer
		opt := nrp.DefaultOptions()
		opt.Dim = *dim
		opt.Seed = *seed
		if err := opt.Validate(); err != nil {
			return nil, err
		}
		start := time.Now()
		logger.Info("embedding graph", "nodes", g.N, "edges", g.NumEdges)
		dyn, err := nrp.NewDynamicEmbedding(ctx, g, opt, nrp.DynamicConfig{Policy: policy}, nrp.WithThreads(*threads))
		if err != nil {
			return nil, err
		}
		logger.Info("embedded", "wall", time.Since(start).Round(time.Millisecond))
		opts := []nrp.IndexOption{
			nrp.WithBackend(backend),
			nrp.WithShards(*shards),
			nrp.WithIncludeSelf(*includeSelf),
			nrp.WithThreads(*threads),
		}
		if *rerank > 0 {
			opts = append(opts, nrp.WithRerank(*rerank))
		}
		opts = append(opts, hnswOpts...)
		live, err = nrp.NewLiveIndex(dyn, opts...)
		if err != nil {
			return nil, err
		}
		searcher = live
		pprOpts := []nrp.PPROption{nrp.WithThreads(*threads)}
		if *pprAlpha != 0 {
			pprOpts = append(pprOpts, nrp.WithAlpha(*pprAlpha))
		}
		if *pprEpsilon != 0 {
			pprOpts = append(pprOpts, nrp.WithEpsilon(*pprEpsilon))
		}
		switch {
		case *pprWalks > 0:
			start := time.Now()
			wi, err := nrp.BuildWalkIndex(ctx, g, *pprWalks, pprOpts...)
			if err != nil {
				return nil, err
			}
			logger.Info("walk index built", "walks_per_node", *pprWalks,
				"wall", time.Since(start).Round(time.Millisecond))
			pprOpts = append(pprOpts, nrp.WithWalkIndex(wi))
		case storedIdx != nil:
			logger.Info("using snapshot walk index", "walks_per_node", storedIdx.WalksPerNode())
			pprOpts = append(pprOpts, nrp.WithWalkIndex(storedIdx))
		}
		pprEngine, err = nrp.NewPPREngine(g, pprOpts...)
		if err != nil {
			return nil, err
		}
		// Keep indexed PPR queries honest under live edge updates: mark
		// walk-index rows stale as update batches land, so stale starts
		// fall back to live walks until the lazy repair re-walks them.
		if idx := pprEngine.Index(); idx != nil {
			idx.EnableMaintenance()
			dyn.SetWalkInvalidator(idx)
			logger.Info("walk index maintenance enabled",
				"walks_per_node", idx.WalksPerNode())
		}
	default:
		backend, err := nrp.ParseBackend(*backendName)
		if err != nil {
			return nil, err
		}
		f, err := os.Open(*embPath)
		if err != nil {
			return nil, err
		}
		emb, err := nrp.LoadEmbedding(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		opts := []nrp.IndexOption{
			nrp.WithBackend(backend),
			nrp.WithShards(*shards),
			nrp.WithIncludeSelf(*includeSelf),
			nrp.WithThreads(*threads),
		}
		if *rerank > 0 {
			opts = append(opts, nrp.WithRerank(*rerank))
		}
		if *shardSpec != "" {
			opts = append(opts, nrp.WithShardSlice(shardIdx, shardCnt))
		}
		opts = append(opts, hnswOpts...)
		searcher, err = nrp.BuildIndex(emb, opts...)
		if err != nil {
			return nil, err
		}
	}
	if live == nil {
		for _, name := range []string{"refresh-policy", "refresh-interval", "dim", "seed", "directed", "ppr-walks", "ppr-alpha", "ppr-epsilon"} {
			if set[name] {
				return nil, fmt.Errorf("-%s requires -graph", name)
			}
		}
	}

	label := "unknown"
	if b, ok := searcher.(interface{ Backend() nrp.Backend }); ok {
		label = b.Backend().String()
	}
	svCfg := serve.Config{
		Backend:        label,
		MaxK:           *maxK,
		MaxBatch:       *maxBatch,
		PPR:            pprEngine,
		Logger:         logger,
		RateLimit:      *rateLimit,
		RateBurst:      *rateBurst,
		Coalesce:       *coalesce,
		CoalesceWindow: *coalesceWin,
	}
	if *shardSpec != "" {
		lo, hi := nrp.ShardRange(searcher.N(), shardIdx, shardCnt)
		svCfg.Shard = &serve.ShardInfo{Index: shardIdx, Count: shardCnt, Lo: lo, Hi: hi}
		logger.Info("serving shard slice", "shard", *shardSpec, "lo", lo, "hi", hi)
	}
	var sv *serve.Server
	if live != nil {
		sv = serve.NewLiveServer(live, svCfg)
	} else {
		sv = serve.NewServer(searcher, svCfg)
	}
	bootOK = true
	return &config{server: sv, live: live, graphCloser: graphCloser,
		refreshEvery: *refreshIntv, addr: *addr, drain: *drain, logger: logger}, nil
}

// refreshLoop refreshes the live index whenever updates are pending, once
// per tick, until ctx is cancelled. Each refresh is recorded on the
// server's /metrics registry, so background swaps are as observable as
// /v1/refresh ones.
func refreshLoop(ctx context.Context, live *nrp.LiveIndex, every time.Duration, m *serve.Metrics, logger *slog.Logger) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if live.Pending() == 0 {
				continue
			}
			st, err := live.Refresh(ctx)
			if err != nil {
				if ctx.Err() == nil {
					logger.Error("background refresh failed", "err", err)
				}
				continue
			}
			m.ObserveRefresh(st)
			if st.Mode == nrp.RefreshedSkipped {
				continue // staleness policy below threshold: nothing happened
			}
			logger.Info("refreshed", "mode", st.Mode, "touched", st.TouchedNodes,
				"wall", st.Wall.Round(time.Millisecond))
		}
	}
}

func run(ctx context.Context, args []string) error {
	cfg, err := newServerFromFlags(ctx, args)
	if err != nil {
		return err
	}
	// The refresh loop runs under its own cancelable context so it can be
	// stopped (and joined) even when serve.Serve returns an error without
	// the signal context ever being cancelled.
	loopCtx, stopLoop := context.WithCancel(ctx)
	defer stopLoop()
	var refreshDone chan struct{}
	if cfg.live != nil && cfg.refreshEvery > 0 {
		refreshDone = make(chan struct{})
		go func() {
			defer close(refreshDone)
			refreshLoop(loopCtx, cfg.live, cfg.refreshEvery, cfg.server.Metrics(), cfg.logger)
		}()
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	cfg.logger.Info("listening", "addr", ln.Addr().String(), "drain", cfg.drain)
	err = cfg.server.Serve(ctx, ln, cfg.drain)
	// Join the background refresh loop before unmapping the graph: a
	// refresh caught mid-recompute at shutdown still reads the mapped CSR
	// arrays, and munmapping under it would segfault instead of exiting
	// cleanly.
	stopLoop()
	if refreshDone != nil {
		<-refreshDone
	}
	if cfg.graphCloser != nil {
		cfg.graphCloser.Close()
	}
	return err
}
