package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/nrp-embed/nrp"
	"github.com/nrp-embed/nrp/internal/serve"
)

// writeFixtures embeds a small SBM graph and writes both the raw
// embedding and a quantized index snapshot to dir.
func writeFixtures(t *testing.T, dir string) (embPath, indexPath string, emb *nrp.Embedding) {
	t.Helper()
	g, err := nrp.GenSBM(nrp.SBMConfig{N: 150, M: 900, Communities: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	opt := nrp.DefaultOptions()
	opt.Dim = 16
	emb, _, err = nrp.EmbedCtx(context.Background(), g, opt)
	if err != nil {
		t.Fatal(err)
	}

	embPath = filepath.Join(dir, "emb.bin")
	f, err := os.Create(embPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := emb.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s, err := nrp.BuildIndex(emb, nrp.WithBackend(nrp.BackendQuantized), nrp.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	indexPath = filepath.Join(dir, "index.bin")
	f, err = os.Create(indexPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := nrp.SaveIndex(f, s); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return embPath, indexPath, emb
}

// TestServeFromSnapshotEndToEnd is the integration test of the serving
// story: build index → snapshot → boot nrpserve from the snapshot → query
// /v1/topk and /v1/score over HTTP → answers match the library.
func TestServeFromSnapshotEndToEnd(t *testing.T) {
	dir := t.TempDir()
	_, indexPath, emb := writeFixtures(t, dir)

	cfg, err := newServerFromFlags(context.Background(), []string{"-index", indexPath, "-shards", "2"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(cfg.server.Handler())
	defer ts.Close()

	// healthz reports the snapshot's backend without any flag saying so.
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz serve.HealthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz.Status != "ok" || hz.Nodes != emb.N() || hz.Backend != "quantized" {
		t.Fatalf("healthz %+v", hz)
	}

	// A top-k query over HTTP matches the library answer bit for bit.
	resp, err = http.Get(ts.URL + "/v1/topk?u=7&k=5")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("topk status %d", resp.StatusCode)
	}
	var tk serve.TopKResponse
	if err := json.NewDecoder(resp.Body).Decode(&tk); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	f, err := os.Open(indexPath)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := nrp.LoadIndex(f, nrp.WithShards(2))
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	want, err := lib.TopK(context.Background(), 7, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tk.Results) != 1 || len(tk.Results[0].Neighbors) != len(want) {
		t.Fatalf("topk response %+v", tk)
	}
	for i, nb := range tk.Results[0].Neighbors {
		if nb.Node != want[i].Node || nb.Score != want[i].Score {
			t.Fatalf("rank %d: http %+v lib %+v", i, nb, want[i])
		}
	}

	// Scoring round-trips exactly too.
	body := strings.NewReader(`{"pairs":[[0,1],[7,9]]}`)
	resp, err = http.Post(ts.URL+"/v1/score", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var sc serve.ScoreResponse
	if err := json.NewDecoder(resp.Body).Decode(&sc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(sc.Scores) != 2 || sc.Scores[0] != emb.Score(0, 1) || sc.Scores[1] != emb.Score(7, 9) {
		t.Fatalf("scores %+v", sc.Scores)
	}

	// Validation errors surface as 400s.
	resp, err = http.Get(ts.URL + "/v1/topk?u=99999&k=5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range u status %d", resp.StatusCode)
	}
}

// TestServeFromEmbedding boots from a raw embedding with each backend.
func TestServeFromEmbedding(t *testing.T) {
	dir := t.TempDir()
	embPath, _, emb := writeFixtures(t, dir)
	for _, backend := range []string{"exact", "quantized", "pruned"} {
		cfg, err := newServerFromFlags(context.Background(), []string{"-embedding", embPath, "-backend", backend})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(cfg.server.Handler())
		resp, err := http.Get(ts.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var hz serve.HealthzResponse
		if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if hz.Backend != backend || hz.Nodes != emb.N() {
			t.Fatalf("healthz %+v for backend %s", hz, backend)
		}
		ts.Close()
	}
}

func TestFlagValidation(t *testing.T) {
	dir := t.TempDir()
	embPath, indexPath, _ := writeFixtures(t, dir)
	for _, tc := range [][]string{
		{}, // neither source
		{"-index", indexPath, "-embedding", embPath}, // both sources
		{"-index", indexPath, "-backend", "exact"},   // backend is baked into snapshots
		{"-index", filepath.Join(dir, "missing.bin")},
		{"-embedding", embPath, "-backend", "bogus"},
		{"-embedding", filepath.Join(dir, "missing.bin")},
	} {
		if _, err := newServerFromFlags(context.Background(), tc); err == nil {
			t.Fatalf("args %v accepted", tc)
		}
	}
}

// TestRunGracefulShutdown exercises the real run() path: ephemeral port,
// cancel the context, expect a clean drained exit.
func TestRunGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	_, indexPath, _ := writeFixtures(t, dir)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-index", indexPath, "-addr", "127.0.0.1:0", "-drain", "2s"})
	}()
	time.Sleep(200 * time.Millisecond) // let it bind
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after cancellation")
	}
}

// writeGraphFixture writes a small SBM graph as an edge list.
func writeGraphFixture(t *testing.T, dir string) string {
	t.Helper()
	g, err := nrp.GenSBM(nrp.SBMConfig{N: 120, M: 700, Communities: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "graph.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := nrp.WriteGraph(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return path
}

// TestServeLiveFromGraph boots the live path (-graph), applies updates,
// refreshes, and checks the serving index swapped without failing queries.
func TestServeLiveFromGraph(t *testing.T) {
	dir := t.TempDir()
	graphPath := writeGraphFixture(t, dir)
	cfg, err := newServerFromFlags(context.Background(), []string{
		"-graph", graphPath, "-dim", "16", "-refresh-policy", "incremental",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.live == nil {
		t.Fatal("live index not configured")
	}
	ts := httptest.NewServer(cfg.server.Handler())
	defer ts.Close()

	var hz serve.HealthzResponse
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !hz.Live || hz.Nodes != 120 {
		t.Fatalf("healthz %+v, want live over 120 nodes", hz)
	}

	resp, err = http.Post(ts.URL+"/v1/update", "application/json",
		strings.NewReader(`{"insert":[[0,119],[1,118]]}`))
	if err != nil {
		t.Fatal(err)
	}
	var ur serve.UpdateResponse
	if err := json.NewDecoder(resp.Body).Decode(&ur); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ur.Applied != 2 {
		t.Fatalf("update status %d response %+v", resp.StatusCode, ur)
	}

	before := cfg.live.Searcher()
	resp, err = http.Post(ts.URL+"/v1/refresh", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	var rr serve.RefreshResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rr.Mode != "incremental" {
		t.Fatalf("refresh status %d response %+v", resp.StatusCode, rr)
	}
	if cfg.live.Searcher() == before {
		t.Fatal("refresh did not swap the serving index")
	}

	resp, err = http.Get(ts.URL + "/v1/topk?u=0&k=5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("topk after refresh: status %d", resp.StatusCode)
	}
}

// TestBackgroundRefreshLoop verifies -refresh-interval picks up pending
// updates without an explicit /v1/refresh call.
func TestBackgroundRefreshLoop(t *testing.T) {
	dir := t.TempDir()
	graphPath := writeGraphFixture(t, dir)
	cfg, err := newServerFromFlags(context.Background(), []string{
		"-graph", graphPath, "-dim", "16", "-refresh-interval", "50ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go refreshLoop(ctx, cfg.live, cfg.refreshEvery, cfg.server.Metrics(), cfg.logger)

	if _, err := cfg.live.ApplyUpdates(ctx, []nrp.EdgeUpdate{
		{U: 0, V: 117, Op: nrp.UpdateInsert},
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for cfg.live.Pending() != 0 {
		select {
		case <-deadline:
			t.Fatal("background refresh never drained the pending updates")
		case <-time.After(20 * time.Millisecond):
		}
	}
}

func TestLiveFlagValidation(t *testing.T) {
	dir := t.TempDir()
	embPath, _, _ := writeFixtures(t, dir)
	graphPath := writeGraphFixture(t, dir)
	for _, tc := range [][]string{
		{"-graph", graphPath, "-embedding", embPath},              // two sources
		{"-graph", graphPath, "-refresh-policy", "bogus"},         // bad policy
		{"-graph", graphPath, "-dim", "7"},                        // odd dim
		{"-graph", filepath.Join(dir, "missing.txt")},             // missing file
		{"-embedding", embPath, "-refresh-policy", "incremental"}, // policy without -graph
		{"-embedding", embPath, "-refresh-interval", "10s"},       // interval without -graph
	} {
		if _, err := newServerFromFlags(context.Background(), tc); err == nil {
			t.Fatalf("args %v accepted", tc)
		}
	}
}

// TestServeLiveFromNRPGSnapshot boots the live path from a memory-mapped
// binary snapshot and exercises an update + refresh, proving the
// copy-on-write mutation path works over read-only mapped pages.
func TestServeLiveFromNRPGSnapshot(t *testing.T) {
	dir := t.TempDir()
	g, err := nrp.GenSBM(nrp.SBMConfig{N: 120, M: 600, Communities: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, "graph.nrpg")
	if err := nrp.SaveGraph(snapPath, g); err != nil {
		t.Fatal(err)
	}
	cfg, err := newServerFromFlags(context.Background(), []string{
		"-graph", snapPath, "-dim", "16", "-refresh-policy", "incremental",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.live == nil {
		t.Fatal("live index not configured")
	}
	if cfg.graphCloser == nil {
		t.Fatal("snapshot boot did not record a mapping closer")
	}
	defer cfg.graphCloser.Close()
	ts := httptest.NewServer(cfg.server.Handler())
	defer ts.Close()

	var hz serve.HealthzResponse
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !hz.Live || hz.Nodes != 120 {
		t.Fatalf("healthz %+v, want live over 120 nodes", hz)
	}

	// Insert an edge (copy-on-write over the mapped CSR) and refresh.
	body := strings.NewReader(`{"insert":[[0,119],[1,117]]}`)
	resp, err = http.Post(ts.URL+"/v1/update", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update status %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/refresh", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("refresh status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/topk?u=0&k=5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("topk status %d after refresh", resp.StatusCode)
	}
}

// TestServePPRFromGraph boots a live server with a boot-time walk index
// and checks /v1/ppr answers from it, observing live updates.
func TestServePPRFromGraph(t *testing.T) {
	dir := t.TempDir()
	graphPath := writeGraphFixture(t, dir)
	cfg, err := newServerFromFlags(context.Background(), []string{
		"-graph", graphPath, "-dim", "16", "-ppr-walks", "8", "-ppr-epsilon", "0.4",
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(cfg.server.Handler())
	defer ts.Close()

	post := func(body string) (*http.Response, serve.PPRResponse) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/ppr", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var pr serve.PPRResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp, pr
	}

	resp, pr := post(`{"seeds":[0,7],"k":5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ppr status %d", resp.StatusCode)
	}
	if len(pr.Scores) != 5 || !pr.Stats.UsedIndex {
		t.Fatalf("ppr response %+v, want 5 scores answered from the walk index", pr)
	}

	// Queries see /v1/update immediately (no refresh): connect node 0 to an
	// otherwise-far node and watch its score appear.
	upd, err := http.Post(ts.URL+"/v1/update", "application/json",
		strings.NewReader(`{"insert":[[0,119]]}`))
	if err != nil {
		t.Fatal(err)
	}
	upd.Body.Close()
	if upd.StatusCode != http.StatusOK {
		t.Fatalf("update status %d", upd.StatusCode)
	}
	resp, pr = post(`{"seeds":[0],"k":120}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ppr after update: status %d", resp.StatusCode)
	}
	found := false
	for _, s := range pr.Scores {
		if s.Node == 119 && s.Score > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("ppr did not observe the live-inserted edge 0->119")
	}
}

// TestServePPRFromIndexedSnapshot boots from an NRPG snapshot carrying a
// walk index and verifies /v1/ppr uses it without -ppr-walks.
func TestServePPRFromIndexedSnapshot(t *testing.T) {
	dir := t.TempDir()
	g, err := nrp.GenSBM(nrp.SBMConfig{N: 120, M: 600, Communities: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	wi, err := nrp.BuildWalkIndex(context.Background(), g, 6)
	if err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, "graph.nrpg")
	if err := nrp.SaveGraphIndexed(snapPath, g, wi); err != nil {
		t.Fatal(err)
	}
	cfg, err := newServerFromFlags(context.Background(), []string{
		"-graph", snapPath, "-dim", "16",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cfg.graphCloser.Close()
	ts := httptest.NewServer(cfg.server.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/ppr", "application/json", strings.NewReader(`{"seeds":[3],"k":4}`))
	if err != nil {
		t.Fatal(err)
	}
	var pr serve.PPRResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !pr.Stats.UsedIndex {
		t.Fatalf("status %d, stats %+v: snapshot walk index not used", resp.StatusCode, pr.Stats)
	}
}

func TestPPRFlagsRequireGraph(t *testing.T) {
	dir := t.TempDir()
	embPath, _, _ := writeFixtures(t, dir)
	for _, tc := range [][]string{
		{"-embedding", embPath, "-ppr-walks", "8"},
		{"-embedding", embPath, "-ppr-alpha", "0.2"},
		{"-embedding", embPath, "-ppr-epsilon", "0.3"},
	} {
		if _, err := newServerFromFlags(context.Background(), tc); err == nil {
			t.Fatalf("args %v accepted", tc)
		}
	}
	// And /v1/ppr on a non-graph server conflicts.
	cfg, err := newServerFromFlags(context.Background(), []string{"-embedding", embPath})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(cfg.server.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/ppr", "application/json", strings.NewReader(`{"seeds":[1],"k":3}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("ppr without a graph: status %d, want 409", resp.StatusCode)
	}
}

// TestServeShardSlice boots three -shard i/3 servers from one snapshot
// and checks that each advertises its slice in /v1/healthz, answers only
// from it, and that the merged per-shard answers reproduce the unsharded
// server's — the contract cmd/nrprouter is built on.
func TestServeShardSlice(t *testing.T) {
	dir := t.TempDir()
	_, indexPath, emb := writeFixtures(t, dir)
	const count, k = 3, 8

	full, err := newServerFromFlags(context.Background(), []string{"-index", indexPath})
	if err != nil {
		t.Fatal(err)
	}
	fullTS := httptest.NewServer(full.server.Handler())
	defer fullTS.Close()

	type merged struct {
		Node  int
		Score float64
	}
	var union []merged
	next := 0
	for i := 0; i < count; i++ {
		cfg, err := newServerFromFlags(context.Background(),
			[]string{"-index", indexPath, "-shard", fmt.Sprintf("%d/%d", i, count)})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(cfg.server.Handler())
		resp, err := http.Get(ts.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var hz serve.HealthzResponse
		if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if hz.Shard == nil || hz.Shard.Index != i || hz.Shard.Count != count || hz.Shard.Lo != next {
			t.Fatalf("shard %d healthz shard info %+v", i, hz.Shard)
		}
		next = hz.Shard.Hi

		resp, err = http.Get(fmt.Sprintf("%s/v1/topk?u=7&k=%d", ts.URL, k))
		if err != nil {
			t.Fatal(err)
		}
		var tk serve.TopKResponse
		if err := json.NewDecoder(resp.Body).Decode(&tk); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		for _, nb := range tk.Results[0].Neighbors {
			if nb.Node < hz.Shard.Lo || nb.Node >= hz.Shard.Hi {
				t.Fatalf("shard %d returned node %d outside [%d,%d)", i, nb.Node, hz.Shard.Lo, hz.Shard.Hi)
			}
			union = append(union, merged{nb.Node, nb.Score})
		}
		ts.Close()
	}
	if next != emb.N() {
		t.Fatalf("shard slices end at %d, want %d", next, emb.N())
	}

	// Merge: score desc, node asc, truncate k — the router's merge rule.
	sort.Slice(union, func(i, j int) bool {
		if union[i].Score != union[j].Score {
			return union[i].Score > union[j].Score
		}
		return union[i].Node < union[j].Node
	})
	union = union[:k]
	resp, err := http.Get(fmt.Sprintf("%s/v1/topk?u=7&k=%d", fullTS.URL, k))
	if err != nil {
		t.Fatal(err)
	}
	var want serve.TopKResponse
	if err := json.NewDecoder(resp.Body).Decode(&want); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// The quantized snapshot's merged shortlist is a superset of the
	// single-node one: assert per-rank score dominance (equality for the
	// exact backends is covered in the nrp package tests).
	for r, nb := range want.Results[0].Neighbors {
		if union[r].Score < nb.Score {
			t.Fatalf("rank %d: merged score %g below single-node %g", r, union[r].Score, nb.Score)
		}
	}
}

func TestShardFlagValidation(t *testing.T) {
	dir := t.TempDir()
	embPath, indexPath, _ := writeFixtures(t, dir)
	g := filepath.Join(dir, "graph.txt")
	if err := os.WriteFile(g, []byte("0 1\n1 2\n2 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, tc := range [][]string{
		{"-index", indexPath, "-shard", "three"},                     // not i/N
		{"-index", indexPath, "-shard", "3/3"},                       // index out of range
		{"-index", indexPath, "-shard", "-1/3"},                      // negative index
		{"-embedding", embPath, "-shard", "0/0"},                     // zero count
		{"-graph", g, "-shard", "0/2"},                               // live servers cannot shard
		{"-embedding", embPath, "-backend", "hnsw", "-shard", "0/2"}, // global beam search
	} {
		if _, err := newServerFromFlags(context.Background(), tc); err == nil {
			t.Fatalf("args %v accepted", tc)
		}
	}
}
