// Command nrpload is a closed-loop load generator for nrpserve. It
// drives a mixed topk/score/ppr/update workload at an optional target
// rate, reports achieved QPS and client-side latency quantiles per
// endpoint, and can write the report as a BENCH_serve.json-style record
// for the bench gate.
//
// Usage:
//
//	nrpload -addr http://127.0.0.1:8080 -duration 15s -concurrency 8 \
//	    -mix topk=80,score=10,ppr=5,update=5 -zipf 1.2 \
//	    -out nrpload-report.json -max-p99 50ms
//
// The exit status is the smoke-test verdict: nonzero when any request
// got a 5xx, when any transport error occurred, or when -max-p99 is set
// and some endpoint's observed p99 exceeds it. Endpoints the server does
// not support (update on a static snapshot, ppr when disabled) have
// their traffic share folded into topk with a warning.
//
// Pointed at a cmd/nrprouter front, nrpload also counts topk answers the
// router flagged "partial": true (served from a degraded shard fleet);
// -expect-partial turns that count into an assertion — the
// kill-a-shard-mid-run smoke must observe the degradation it induced.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"github.com/nrp-embed/nrp/internal/loadgen"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nrpload:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nrpload", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "server base URL")
	duration := fs.Duration("duration", 15*time.Second, "how long to drive load")
	concurrency := fs.Int("concurrency", 8, "closed-loop worker count")
	rate := fs.Float64("rate", 0, "target aggregate QPS (0 = unpaced)")
	mixSpec := fs.String("mix", "topk=80,score=10,ppr=5,update=5", "traffic mix as name=weight pairs")
	k := fs.Int("k", 10, "top-k per query")
	zipfS := fs.Float64("zipf", 1.2, "Zipf skew for source nodes (<=1 = uniform)")
	seed := fs.Int64("seed", 1, "traffic seed")
	outPath := fs.String("out", "", "write the JSON report to this file")
	maxP99 := fs.Duration("max-p99", 0, "fail if any endpoint's p99 exceeds this (0 = no bound)")
	expectPartial := fs.Bool("expect-partial", false, "require at least one partial topk response (degraded-router smoke: a shard was killed mid-run and the router must have kept serving)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mix, err := loadgen.ParseMix(*mixSpec)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	report, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:     *addr,
		Duration:    *duration,
		Concurrency: *concurrency,
		TargetQPS:   *rate,
		K:           *k,
		Mix:         mix,
		ZipfS:       *zipfS,
		Seed:        *seed,
	})
	if err != nil {
		return err
	}

	printReport(out, report)
	if *outPath != "" {
		raw, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "report written to %s\n", *outPath)
	}
	return verdict(report, *maxP99, *expectPartial)
}

// printReport renders the human-readable summary.
func printReport(out io.Writer, r *loadgen.Report) {
	for _, w := range r.Warnings {
		fmt.Fprintf(out, "warning: %s\n", w)
	}
	fmt.Fprintf(out, "%d requests in %.1fs -> %.0f req/s (%d workers)\n",
		r.TotalRequests, r.DurationSec, r.AchievedQPS, r.Concurrency)
	fmt.Fprintf(out, "5xx: %d  429: %d  transport errors: %d  partial: %d\n",
		r.Errors5xx, r.RateLimited, r.TransportErrors, r.PartialResponses)
	names := make([]string, 0, len(r.Endpoints))
	for name := range r.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(out, "%-8s %10s %10s %10s %10s\n", "endpoint", "requests", "p50", "p90", "p99")
	for _, name := range names {
		ep := r.Endpoints[name]
		fmt.Fprintf(out, "%-8s %10d %10s %10s %10s\n", name, ep.Requests,
			usDur(ep.P50Us), usDur(ep.P90Us), usDur(ep.P99Us))
	}
}

// verdict applies the smoke-test pass/fail rules to a finished report.
func verdict(r *loadgen.Report, maxP99 time.Duration, expectPartial bool) error {
	if r.TotalRequests == 0 {
		return fmt.Errorf("no requests completed")
	}
	if expectPartial && r.PartialResponses == 0 {
		return fmt.Errorf("expected partial responses from a degraded router, saw none")
	}
	if r.Errors5xx > 0 {
		return fmt.Errorf("%d requests got 5xx responses", r.Errors5xx)
	}
	if r.TransportErrors > 0 {
		return fmt.Errorf("%d requests failed at the transport", r.TransportErrors)
	}
	if maxP99 > 0 {
		for name, ep := range r.Endpoints {
			if p99 := time.Duration(ep.P99Us) * time.Microsecond; p99 > maxP99 {
				return fmt.Errorf("%s p99 %v exceeds bound %v", name, p99, maxP99)
			}
		}
	}
	return nil
}

func usDur(us int64) time.Duration {
	return time.Duration(us) * time.Microsecond
}
