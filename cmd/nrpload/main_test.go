package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/nrp-embed/nrp"
	"github.com/nrp-embed/nrp/internal/loadgen"
	"github.com/nrp-embed/nrp/internal/serve"
)

// testServer boots a static quantized server over a small synthetic
// graph.
func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	g, err := nrp.GenSBM(nrp.SBMConfig{N: 150, M: 900, Communities: 3, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	opt := nrp.DefaultOptions()
	opt.Dim = 16
	emb, _, err := nrp.EmbedCtx(context.Background(), g, opt)
	if err != nil {
		t.Fatal(err)
	}
	s, err := nrp.BuildIndex(emb, nrp.WithBackend(nrp.BackendQuantized))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.NewServer(s, serve.Config{Backend: "quantized"}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestRunWritesReport runs a short smoke load and checks the exit
// verdict, the human summary, and the -out JSON report.
func TestRunWritesReport(t *testing.T) {
	ts := testServer(t)
	outPath := filepath.Join(t.TempDir(), "report.json")
	var buf bytes.Buffer
	err := run(context.Background(), []string{
		"-addr", ts.URL, "-duration", "300ms", "-concurrency", "2",
		"-mix", "topk=80,score=20", "-k", "4", "-out", outPath,
	}, &buf)
	if err != nil {
		t.Fatalf("run failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "req/s") {
		t.Fatalf("summary missing throughput line:\n%s", buf.String())
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var report loadgen.Report
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("report is not JSON: %v", err)
	}
	if report.TotalRequests == 0 || report.Endpoints["topk"] == nil {
		t.Fatalf("report incomplete: %+v", report)
	}
}

// TestRunP99Verdict fails the run when the p99 bound is impossible.
func TestRunP99Verdict(t *testing.T) {
	ts := testServer(t)
	var buf bytes.Buffer
	err := run(context.Background(), []string{
		"-addr", ts.URL, "-duration", "200ms", "-concurrency", "2",
		"-mix", "topk=1", "-max-p99", "1ns",
	}, &buf)
	if err == nil || !strings.Contains(err.Error(), "exceeds bound") {
		t.Fatalf("p99 bound not enforced: %v", err)
	}
}

// TestRunBadFlags rejects malformed mixes and dead targets.
func TestRunBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-mix", "bogus"}, &buf); err == nil {
		t.Fatal("bad mix accepted")
	}
	if err := run(context.Background(), []string{
		"-addr", "http://127.0.0.1:1", "-duration", "100ms",
	}, &buf); err == nil {
		t.Fatal("dead server accepted")
	}
}

// TestExpectPartial drives load through a router over a degraded shard
// fleet: -expect-partial passes there, and fails against a healthy
// single-node server (which never flags partial).
func TestExpectPartial(t *testing.T) {
	ts := testServer(t)
	var buf bytes.Buffer
	err := run(context.Background(), []string{
		"-addr", ts.URL, "-duration", "200ms", "-concurrency", "2",
		"-mix", "topk=1", "-expect-partial",
	}, &buf)
	if err == nil || !strings.Contains(err.Error(), "partial") {
		t.Fatalf("healthy server satisfied -expect-partial: %v", err)
	}

	// A minimal degraded-router stand-in: healthz like a fleet front,
	// every topk flagged partial.
	deg := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		switch r.URL.Path {
		case "/v1/healthz":
			io.WriteString(w, `{"status":"degraded","nodes":100}`)
		case "/v1/topk":
			io.WriteString(w, `{"k":4,"results":[{"u":1,"neighbors":[]}],"partial":true}`)
		default:
			http.NotFound(w, r)
		}
	}))
	defer deg.Close()
	buf.Reset()
	err = run(context.Background(), []string{
		"-addr", deg.URL, "-duration", "200ms", "-concurrency", "2",
		"-mix", "topk=1", "-expect-partial",
	}, &buf)
	if err != nil {
		t.Fatalf("degraded router failed -expect-partial: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "partial:") {
		t.Fatalf("summary missing partial count:\n%s", buf.String())
	}
}
