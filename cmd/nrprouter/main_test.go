package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/nrp-embed/nrp"
	"github.com/nrp-embed/nrp/internal/serve"
)

func init() { defaultLogLevel = "error" }

// startShards boots a count-way shard fleet over one embedding, the way
// `nrpserve -shard i/count` would.
func startShards(t *testing.T, count int) (urls []string, ref *httptest.Server) {
	t.Helper()
	g, err := nrp.GenSBM(nrp.SBMConfig{N: 120, M: 700, Communities: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	opt := nrp.DefaultOptions()
	opt.Dim = 16
	emb, _, err := nrp.EmbedCtx(context.Background(), g, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < count; i++ {
		s, err := nrp.BuildIndex(emb, nrp.WithShardSlice(i, count))
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := nrp.ShardRange(emb.N(), i, count)
		sv := serve.NewServer(s, serve.Config{
			Backend: "exact",
			Shard:   &serve.ShardInfo{Index: i, Count: count, Lo: lo, Hi: hi},
		})
		ts := httptest.NewServer(sv.Handler())
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
	}
	full, err := nrp.BuildIndex(emb)
	if err != nil {
		t.Fatal(err)
	}
	ref = httptest.NewServer(serve.NewServer(full, serve.Config{Backend: "exact"}).Handler())
	t.Cleanup(ref.Close)
	return urls, ref
}

// TestRouterFromFlagsEndToEnd drives the CLI boot path against a live
// fleet and checks the routed answer against a single-node server.
func TestRouterFromFlagsEndToEnd(t *testing.T) {
	urls, ref := startShards(t, 3)
	cfg, err := newRouterFromFlags(context.Background(),
		[]string{"-shards", strings.Join(urls, ","), "-boot-timeout", "5s"})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(cfg.rt.Handler())
	defer rts.Close()

	for _, base := range []string{rts.URL, ref.URL} {
		resp, err := http.Get(base + "/v1/topk?u=11&k=7")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", base, resp.StatusCode)
		}
		resp.Body.Close()
	}
	get := func(base string) serve.TopKResponse {
		resp, err := http.Get(base + "/v1/topk?u=11&k=7")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var tk serve.TopKResponse
		if err := json.NewDecoder(resp.Body).Decode(&tk); err != nil {
			t.Fatal(err)
		}
		return tk
	}
	got, want := get(rts.URL), get(ref.URL)
	if !reflect.DeepEqual(got.Results, want.Results) {
		t.Fatalf("router %+v\nsingle %+v", got.Results, want.Results)
	}
}

func TestRouterFlagValidation(t *testing.T) {
	for _, tc := range [][]string{
		{}, // -shards required
		{"-shards", "http://x", "-log-format", "bogus"},             // bad log format
		{"-shards", "http://127.0.0.1:1", "-boot-timeout", "200ms"}, // unreachable fleet
	} {
		if _, err := newRouterFromFlags(context.Background(), tc); err == nil {
			t.Fatalf("args %v accepted", tc)
		}
	}
}

// TestRunGracefulShutdown exercises the real run() path: boot against a
// live fleet on an ephemeral port, then cancel and expect a clean exit.
func TestRunGracefulShutdown(t *testing.T) {
	urls, _ := startShards(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-shards", strings.Join(urls, ","),
			"-addr", "127.0.0.1:0", "-drain", "2s", "-health-interval", "50ms"})
	}()
	time.Sleep(300 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not exit after cancel")
	}
}
