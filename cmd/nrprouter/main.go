// Command nrprouter is the stateless scatter-gather front for a sharded
// nrpserve fleet: N processes each booted with -shard i/N over the same
// index snapshot, answering top-k queries over disjoint node-range
// slices.
//
// Usage:
//
//	nrprouter -shards http://h0:8080,http://h1:8080,http://h2:8080
//	          [-addr :8090] [-timeout 2s] [-hedge-after 500ms]
//	          [-health-interval 2s] [-boot-timeout 30s] [-drain 10s]
//
// At boot the router polls every shard's /v1/healthz until all answer
// (or -boot-timeout), then validates that the advertised slices form a
// complete partition of the node space — a fleet booted with mismatched
// -shard flags is a deployment error and is rejected loudly. From then
// on it serves:
//
//	GET  /v1/healthz   fleet status: ok or degraded, per-shard rotation state
//	GET  /v1/topk?u=42&k=10
//	POST /v1/topk      {"us":[1,2,3],"k":10}
//	POST /v1/score     {"pairs":[[0,1],[2,3]]}   (forwarded round-robin)
//	GET  /metrics      Prometheus text exposition
//
// /v1/topk fans out to every healthy shard with the full k, merges the
// exact scores and truncates — bit-identical to a single unsharded
// server for the exact and pruned backends. Shard calls run under
// -timeout with a hedged second attempt after -hedge-after; a shard that
// still fails drops out of rotation (the -health-interval probe loop
// restores it) and responses degrade gracefully with "partial": true
// rather than failing — watch nrp_router_degraded and
// nrp_router_partial_responses_total.
//
// On SIGINT/SIGTERM the router stops accepting connections and drains
// in-flight fan-outs for up to -drain before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/nrp-embed/nrp/internal/router"
	"github.com/nrp-embed/nrp/internal/serve"
)

// defaultLogLevel seeds the -log-level flag; the test harness lowers it
// to "error" so e2e tests stay quiet.
var defaultLogLevel = "info"

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nrprouter:", err)
		os.Exit(1)
	}
}

type bootConfig struct {
	rt     *router.Router
	addr   string
	drain  time.Duration
	logger *slog.Logger
}

func newLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level: %w", err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format must be text or json, got %q", format)
	}
}

// newRouterFromFlags parses args and boots the router (including shard
// discovery and partition validation); separated from run so tests can
// drive the handler without binding a port.
func newRouterFromFlags(ctx context.Context, args []string) (*bootConfig, error) {
	fs := flag.NewFlagSet("nrprouter", flag.ContinueOnError)
	var (
		shardList  = fs.String("shards", "", "comma-separated shard base URLs (required)")
		addr       = fs.String("addr", ":8090", "listen address")
		timeout    = fs.Duration("timeout", 2*time.Second, "per-attempt shard request timeout")
		hedgeAfter = fs.Duration("hedge-after", 0, "delay before a hedged second shard attempt (default timeout/4, negative disables)")
		healthIntv = fs.Duration("health-interval", 2*time.Second, "background shard health probe period")
		bootWait   = fs.Duration("boot-timeout", 30*time.Second, "how long to wait for all shards at boot")
		drain      = fs.Duration("drain", 10*time.Second, "in-flight request drain window on shutdown")
		maxK       = fs.Int("max-k", 1000, "largest k a request may ask for")
		maxBatch   = fs.Int("max-batch", 1024, "largest batch of sources or pairs per request")
		logFormat  = fs.String("log-format", "text", "structured log format: text or json")
		logLevel   = fs.String("log-level", defaultLogLevel, "minimum log level: debug, info, warn or error")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		return nil, err
	}
	if *shardList == "" {
		fs.Usage()
		return nil, fmt.Errorf("-shards is required")
	}
	var urls []string
	for _, u := range strings.Split(*shardList, ",") {
		if u = strings.TrimRight(strings.TrimSpace(u), "/"); u != "" {
			urls = append(urls, u)
		}
	}
	start := time.Now()
	rt, err := router.New(ctx, router.Config{
		Shards:         urls,
		Timeout:        *timeout,
		HedgeAfter:     *hedgeAfter,
		HealthInterval: *healthIntv,
		BootTimeout:    *bootWait,
		MaxK:           *maxK,
		MaxBatch:       *maxBatch,
		Logger:         logger,
	})
	if err != nil {
		return nil, err
	}
	logger.Info("shard fleet validated", "shards", len(urls),
		"wall", time.Since(start).Round(time.Millisecond))
	return &bootConfig{rt: rt, addr: *addr, drain: *drain, logger: logger}, nil
}

func run(ctx context.Context, args []string) error {
	cfg, err := newRouterFromFlags(ctx, args)
	if err != nil {
		return err
	}
	// The health loop runs under its own cancelable context so it is
	// stopped (and joined) even when Serve returns an error without the
	// signal context ever firing.
	loopCtx, stopLoop := context.WithCancel(ctx)
	defer stopLoop()
	healthDone := make(chan struct{})
	go func() {
		defer close(healthDone)
		cfg.rt.Run(loopCtx)
	}()
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	cfg.logger.Info("listening", "addr", ln.Addr().String(), "drain", cfg.drain)
	err = serve.Serve(ctx, ln, cfg.rt.Handler(), cfg.drain)
	stopLoop()
	<-healthDone
	return err
}
