package nrp

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	g, err := GenSBM(SBMConfig{N: 200, M: 1200, Communities: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Dim = 16
	opt.Seed = 2
	emb, err := Embed(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if emb.N() != g.N || emb.Dim() != 8 {
		t.Fatalf("embedding shape n=%d k'=%d", emb.N(), emb.Dim())
	}

	// True edges should outscore non-edges on average.
	edgeMean, nonMean := 0.0, 0.0
	edges := g.Edges()
	for _, e := range edges {
		edgeMean += emb.Score(int(e.U), int(e.V))
	}
	edgeMean /= float64(len(edges))
	count := 0
	for u := 0; u < g.N; u += 2 {
		for v := 1; v < g.N; v += 5 {
			if u != v && !g.HasEdge(u, v) {
				nonMean += emb.Score(u, v)
				count++
			}
		}
	}
	nonMean /= float64(count)
	if edgeMean <= nonMean {
		t.Fatalf("edge mean %v <= non-edge mean %v", edgeMean, nonMean)
	}
}

func TestEmbedPPRAndWeights(t *testing.T) {
	g, err := GenSBM(SBMConfig{N: 100, M: 500, Communities: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Dim = 8
	base, err := EmbedPPR(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	fw, bw, err := LearnWeights(g, base, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(fw) != g.N || len(bw) != g.N {
		t.Fatal("weight lengths wrong")
	}
}

// TestLearnWeightsCtxValidatesOptions pins that LearnWeightsCtx rejects
// inconsistent options up front like every other public entry point.
func TestLearnWeightsCtxValidatesOptions(t *testing.T) {
	g, err := GenSBM(SBMConfig{N: 40, M: 150, Communities: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Dim = 8
	base, err := EmbedPPR(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	bad := opt
	bad.Lambda = -1
	if _, _, _, err := LearnWeightsCtx(context.Background(), g, base, bad); err == nil {
		t.Fatal("invalid Lambda accepted")
	} else if want := "nrp: invalid options:"; !strings.HasPrefix(err.Error(), want) {
		t.Fatalf("error %q not wrapped as %q", err, want)
	}
}

func TestGraphFileRoundTrip(t *testing.T) {
	g, err := GenErdosRenyi(50, 120, true, 4)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteGraph(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	back, err := LoadGraph(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != g.N || back.NumEdges != g.NumEdges {
		t.Fatalf("round trip lost data: n=%d m=%d", back.N, back.NumEdges)
	}
}

func TestLoadGraphMissingFile(t *testing.T) {
	if _, err := LoadGraph("/definitely/not/here.txt", false); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestEmbeddingSaveLoadViaPublicAPI(t *testing.T) {
	g, err := GenSBM(SBMConfig{N: 60, M: 250, Communities: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Dim = 8
	emb, err := Embed(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := emb.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadEmbedding(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Score(0, 1) != emb.Score(0, 1) {
		t.Fatal("save/load changed scores")
	}
}

func TestReadGraphFromString(t *testing.T) {
	g, err := ReadGraph(strings.NewReader("# demo\n0 1\n1 2\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.NumEdges != 2 {
		t.Fatalf("parsed n=%d m=%d", g.N, g.NumEdges)
	}
}
