package nrp

import "testing"

func TestEmbedAttributedPublicAPI(t *testing.T) {
	g, err := GenSBM(SBMConfig{N: 150, M: 900, Communities: 3, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	attrs, err := GenAttributes(g, 8, 1.0, 72)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultAttributedOptions()
	opt.Dim = 8
	opt.Seed = 73
	emb, err := EmbedAttributed(g, attrs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(emb.Features(0)); got != 8+8 {
		t.Fatalf("feature width %d", got)
	}
	// Same-community pairs should outscore cross-community pairs on
	// average under the fused score.
	same, cross, nSame, nCross := 0.0, 0.0, 0, 0
	for u := 0; u < g.N; u += 2 {
		for v := 1; v < g.N; v += 3 {
			if u == v {
				continue
			}
			if g.Labels[u][0] == g.Labels[v][0] {
				same += emb.Score(u, v)
				nSame++
			} else {
				cross += emb.Score(u, v)
				nCross++
			}
		}
	}
	if same/float64(nSame) <= cross/float64(nCross) {
		t.Fatalf("fused score does not separate communities: %v vs %v",
			same/float64(nSame), cross/float64(nCross))
	}
}

func TestGenAttributesValidation(t *testing.T) {
	g, err := GenErdosRenyi(20, 40, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GenAttributes(g, 4, 1, 1); err == nil {
		t.Fatal("unlabeled graph accepted")
	}
	lg, err := GenSBM(SBMConfig{N: 20, M: 40, Communities: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GenAttributes(lg, 0, 1, 1); err == nil {
		t.Fatal("dim 0 accepted")
	}
	attrs, err := GenAttributes(lg, 4, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != lg.N || len(attrs[0]) != 4 {
		t.Fatalf("attr shape %dx%d", len(attrs), len(attrs[0]))
	}
}
