package nrp_test

import (
	"context"
	"errors"
	"fmt"
	"log"

	"github.com/nrp-embed/nrp"
)

// ExamplePPR answers online seed-set PPR queries on a synthetic graph:
// build an engine once, query any seed set with an (ε, δ) relative-error
// guarantee, then attach a FORA+ walk index to accelerate the walk phase.
func ExamplePPR() {
	ctx := context.Background()
	g, err := nrp.GenSBM(nrp.SBMConfig{N: 400, M: 2400, Communities: 4, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}

	// The engine amortizes its O(n) workspaces across queries; results are
	// deterministic for a fixed seed and thread count.
	eng, err := nrp.NewPPREngine(g, nrp.WithEpsilon(0.3), nrp.WithThreads(2))
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Query(ctx, nrp.PPRQuery{Seeds: []int{3, 17}, K: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-%d nodes of %d candidates (pushed %d, walks %d)\n",
		len(res.Scores), res.Stats.Candidates, res.Stats.Pushed, res.Stats.Walks)

	// FORA+: precompute walk endpoints once, answer the walk phase with
	// array lookups instead of graph traversals.
	wi, err := nrp.BuildWalkIndex(ctx, g, 32, nrp.WithThreads(2))
	if err != nil {
		log.Fatal(err)
	}
	fast, err := nrp.NewPPREngine(g, nrp.WithEpsilon(0.3), nrp.WithThreads(2), nrp.WithWalkIndex(wi))
	if err != nil {
		log.Fatal(err)
	}
	res, err = fast.PPR(ctx, []int{3, 17}, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed query used the walk index: %v\n", res.Stats.UsedIndex)

	// Validation errors wrap typed sentinels.
	_, err = eng.PPR(ctx, nil, 5)
	fmt.Println("empty seed set rejected:", errors.Is(err, nrp.ErrEmptySeedSet))
	// Output:
	// top-5 nodes of 400 candidates (pushed 400, walks 2495)
	// indexed query used the walk index: true
	// empty seed set rejected: true
}
