// Link prediction on a directed social-network-like graph: remove 30% of
// the edges, embed the remainder with NRP and with the ApproxPPR baseline,
// and compare AUC — the protocol of the paper's §5.2 (Fig 4). Scoring runs
// through the serving-grade Index (batch ScoreMany), and the demo finishes
// with a TopK query: the index's ranked link recommendations for one node.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"github.com/nrp-embed/nrp"
)

func main() {
	ctx := context.Background()

	// A directed graph with 20 communities and heavy-tailed degrees,
	// standing in for a social network.
	g, err := nrp.GenSBM(nrp.SBMConfig{
		N: 3000, M: 30000, Communities: 20, Directed: true, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d directed edges\n", g.N, g.NumEdges)

	// Remove 30% of edges for testing.
	rng := rand.New(rand.NewSource(42))
	edges := g.Edges()
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	nTest := len(edges) * 3 / 10
	testPos := edges[:nTest]
	train, err := nrp.NewGraph(g.N, edges[nTest:], true)
	if err != nil {
		log.Fatal(err)
	}

	// Equal number of random non-edges as negatives.
	testNeg := make([]nrp.Edge, 0, nTest)
	for len(testNeg) < nTest {
		u, v := int32(rng.Intn(g.N)), int32(rng.Intn(g.N))
		if u != v && !g.HasEdge(int(u), int(v)) {
			testNeg = append(testNeg, nrp.Edge{U: u, V: v})
		}
	}

	opt := nrp.DefaultOptions()
	opt.Dim = 64
	// The paper's default λ=10 is calibrated to its high-degree social
	// graphs (average degree 39-77); this synthetic graph averages degree
	// 10, so the regularizer is scaled down accordingly.
	opt.Lambda = 0.1
	var nrpIndex *nrp.Index
	for _, method := range []struct {
		name  string
		embed func(context.Context, *nrp.Graph, nrp.Options, ...nrp.RunOption) (*nrp.Embedding, *nrp.Stats, error)
	}{
		{"ApproxPPR (no reweighting)", nrp.EmbedPPRCtx},
		{"NRP (node-reweighted)", nrp.EmbedCtx},
	} {
		emb, _, err := method.embed(ctx, train, opt)
		if err != nil {
			log.Fatal(err)
		}
		ix := nrp.NewIndex(emb)
		a, err := auc(ctx, ix, testPos, testNeg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s AUC = %.4f\n", method.name, a)
		nrpIndex = ix
	}

	// Serving-style query: the NRP index's top link recommendations for
	// node 0, excluding nodes it already points to.
	const source = 0
	nbrs, err := nrpIndex.TopK(ctx, source, 15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop new-link candidates for node %d (existing edges skipped):\n", source)
	shown := 0
	for _, nb := range nbrs {
		if train.HasEdge(source, nb.Node) {
			continue
		}
		fmt.Printf("  -> %-6d score %.4f\n", nb.Node, nb.Score)
		if shown++; shown == 5 {
			break
		}
	}
}

// auc computes the rank-based AUC, batch-scoring both edge sets through the
// index.
func auc(ctx context.Context, ix *nrp.Index, pos, neg []nrp.Edge) (float64, error) {
	pairs := make([]nrp.Pair, 0, len(pos)+len(neg))
	for _, e := range pos {
		pairs = append(pairs, nrp.Pair{U: int(e.U), V: int(e.V)})
	}
	for _, e := range neg {
		pairs = append(pairs, nrp.Pair{U: int(e.U), V: int(e.V)})
	}
	scores, err := ix.ScoreMany(ctx, pairs)
	if err != nil {
		return 0, err
	}
	type scored struct {
		s   float64
		pos bool
	}
	all := make([]scored, len(scores))
	for i, s := range scores {
		all[i] = scored{s, i < len(pos)}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].s < all[j].s })
	rankSum := 0.0
	for i, s := range all {
		if s.pos {
			rankSum += float64(i + 1)
		}
	}
	nPos, nNeg := float64(len(pos)), float64(len(neg))
	return (rankSum - nPos*(nPos+1)/2) / (nPos * nNeg), nil
}
