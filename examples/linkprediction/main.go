// Link prediction on a directed social-network-like graph: remove 30% of
// the edges, embed the remainder with NRP and with the ApproxPPR baseline,
// and compare AUC — the protocol of the paper's §5.2 (Fig 4).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"github.com/nrp-embed/nrp"
)

func main() {
	// A directed graph with 20 communities and heavy-tailed degrees,
	// standing in for a social network.
	g, err := nrp.GenSBM(nrp.SBMConfig{
		N: 3000, M: 30000, Communities: 20, Directed: true, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d directed edges\n", g.N, g.NumEdges)

	// Remove 30% of edges for testing.
	rng := rand.New(rand.NewSource(42))
	edges := g.Edges()
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	nTest := len(edges) * 3 / 10
	testPos := edges[:nTest]
	train, err := nrp.NewGraph(g.N, edges[nTest:], true)
	if err != nil {
		log.Fatal(err)
	}

	// Equal number of random non-edges as negatives.
	testNeg := make([]nrp.Edge, 0, nTest)
	for len(testNeg) < nTest {
		u, v := int32(rng.Intn(g.N)), int32(rng.Intn(g.N))
		if u != v && !g.HasEdge(int(u), int(v)) {
			testNeg = append(testNeg, nrp.Edge{U: u, V: v})
		}
	}

	opt := nrp.DefaultOptions()
	opt.Dim = 64
	// The paper's default λ=10 is calibrated to its high-degree social
	// graphs (average degree 39-77); this synthetic graph averages degree
	// 10, so the regularizer is scaled down accordingly.
	opt.Lambda = 0.1
	for _, method := range []struct {
		name  string
		embed func(*nrp.Graph, nrp.Options) (*nrp.Embedding, error)
	}{
		{"ApproxPPR (no reweighting)", nrp.EmbedPPR},
		{"NRP (node-reweighted)", nrp.Embed},
	} {
		emb, err := method.embed(train, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s AUC = %.4f\n", method.name, auc(emb, testPos, testNeg))
	}
}

// auc computes the rank-based AUC of the embedding's scores.
func auc(emb *nrp.Embedding, pos, neg []nrp.Edge) float64 {
	type scored struct {
		s   float64
		pos bool
	}
	all := make([]scored, 0, len(pos)+len(neg))
	for _, e := range pos {
		all = append(all, scored{emb.Score(int(e.U), int(e.V)), true})
	}
	for _, e := range neg {
		all = append(all, scored{emb.Score(int(e.U), int(e.V)), false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].s < all[j].s })
	rankSum := 0.0
	for i, s := range all {
		if s.pos {
			rankSum += float64(i + 1)
		}
	}
	nPos, nNeg := float64(len(pos)), float64(len(neg))
	return (rankSum - nPos*(nPos+1)/2) / (nPos * nNeg)
}
