// Massive-scale demo: embed a sequence of growing Erdős–Rényi graphs on a
// single core and report wall-clock time per graph, demonstrating the
// near-linear O(k(m+kn) log n) scaling that lets the paper's C++
// implementation embed a 1.2-billion-edge Twitter graph in under 4 hours
// (Fig 10 / §5.5).
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/nrp-embed/nrp"
)

func main() {
	opt := nrp.DefaultOptions()
	opt.Dim = 32 // modest dimensionality keeps the demo snappy

	fmt.Println("nodes     edges      embed time   ns per (m+n)")
	var lastPerUnit float64
	for i, size := range []struct{ n, m int }{
		{20000, 200000},
		{40000, 400000},
		{80000, 800000},
	} {
		g, err := nrp.GenErdosRenyi(size.n, size.m, false, int64(100+i))
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		if _, err := nrp.Embed(g, opt); err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		perUnit := float64(elapsed.Nanoseconds()) / float64(size.m+size.n)
		fmt.Printf("%-9d %-10d %-12v %.0f\n", size.n, size.m, elapsed.Round(time.Millisecond), perUnit)
		lastPerUnit = perUnit
	}
	fmt.Printf("\ncost per edge grows only logarithmically as the graph doubles (last: %.0f ns),\n", lastPerUnit)
	fmt.Println("the O(k(m+kn) log n) scaling behind the paper's billion-edge result.")
}
