// Massive-scale demo: embed a sequence of growing Erdős–Rényi graphs and
// report wall-clock time per graph, demonstrating the near-linear
// O(k(m+kn) log n) scaling that lets the paper's C++ implementation embed a
// 1.2-billion-edge Twitter graph in under 4 hours (Fig 10 / §5.5).
//
// It also demonstrates the v2 observability surface: each run streams
// per-phase progress to stderr, prints the per-phase stats breakdown, and
// aborts cleanly (Ctrl-C) mid-factorization via context cancellation.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/nrp-embed/nrp"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opt := nrp.DefaultOptions()
	opt.Dim = 32 // modest dimensionality keeps the demo snappy

	fmt.Println("nodes     edges      embed time   ns per (m+n)")
	var lastPerUnit float64
	for i, size := range []struct{ n, m int }{
		{20000, 200000},
		{40000, 400000},
		{80000, 800000},
	} {
		g, err := nrp.GenErdosRenyi(size.n, size.m, false, int64(100+i))
		if err != nil {
			log.Fatal(err)
		}
		_, stats, err := nrp.EmbedCtx(ctx, g, opt, nrp.WithProgress(func(ev nrp.ProgressEvent) {
			fmt.Fprintf(os.Stderr, "  [%v] %s %d/%d\r", ev.Elapsed.Round(time.Millisecond), ev.Phase, ev.Step, ev.Total)
		}))
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "\ninterrupted — exiting cleanly")
				return
			}
			log.Fatal(err)
		}
		fmt.Fprintln(os.Stderr)
		perUnit := float64(stats.Total.Nanoseconds()) / float64(size.m+size.n)
		fmt.Printf("%-9d %-10d %-12v %.0f\n", size.n, size.m, stats.Total.Round(time.Millisecond), perUnit)
		stats.Render(os.Stderr)
		lastPerUnit = perUnit
	}
	fmt.Printf("\ncost per edge grows only logarithmically as the graph doubles (last: %.0f ns),\n", lastPerUnit)
	fmt.Println("the O(k(m+kn) log n) scaling behind the paper's billion-edge result.")
}
