// Graph reconstruction: embed a graph, rank all node pairs by embedding
// score and measure which fraction of the top-K pairs are true edges —
// the protocol of the paper's §5.3 (Fig 5).
package main

import (
	"fmt"
	"log"

	"github.com/nrp-embed/nrp"
	"github.com/nrp-embed/nrp/internal/eval"
)

func main() {
	g, err := nrp.GenSBM(nrp.SBMConfig{
		N: 2000, M: 24000, Communities: 15, Seed: 23,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges\n", g.N, g.NumEdges)

	opt := nrp.DefaultOptions()
	opt.Dim = 64
	ks := []int{10, 100, 1000, 10000}

	fmt.Println("method      " + header(ks))
	for _, m := range []struct {
		name  string
		embed func(*nrp.Graph, nrp.Options) (*nrp.Embedding, error)
	}{
		{"ApproxPPR", nrp.EmbedPPR},
		{"NRP", nrp.Embed},
	} {
		emb, err := m.embed(g, opt)
		if err != nil {
			log.Fatal(err)
		}
		// Rank every node pair (sampleFrac = 1).
		prec, err := eval.ReconstructionPrecision(g, emb, 1, ks, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s", m.name)
		for _, p := range prec {
			fmt.Printf("  %8.4f", p)
		}
		fmt.Println()
	}
}

func header(ks []int) string {
	s := ""
	for _, k := range ks {
		s += fmt.Sprintf("  prec@%-4d", k)
	}
	return s
}
