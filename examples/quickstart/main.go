// Quickstart: build NRP embeddings for the paper's 9-node example graph
// and reproduce its motivating observation — raw PPR ranks the node pair
// (v9,v7) above (v2,v4) even though v2 and v4 share three common
// neighbors, and NRP's node reweighting corrects the order.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/nrp-embed/nrp"
)

func main() {
	// The example graph of the paper's Fig 1 (nodes are 0-indexed here:
	// v1 = 0, …, v9 = 8).
	edges := []nrp.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 2}, {U: 1, V: 4},
		{U: 2, V: 3}, {U: 2, V: 4}, {U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 6},
		{U: 6, V: 7}, {U: 7, V: 8},
	}
	g, err := nrp.NewGraph(9, edges, false)
	if err != nil {
		log.Fatal(err)
	}

	opt := nrp.DefaultOptions()
	opt.Dim = 8    // tiny graph, tiny embedding
	opt.Lambda = 0 // the paper's Example 2 disables regularization on this toy
	opt.Seed = 7

	ctx := context.Background()
	ppr, _, err := nrp.EmbedPPRCtx(ctx, g, opt) // Algorithm 1: PPR factorization only
	if err != nil {
		log.Fatal(err)
	}
	reweighted, _, err := nrp.EmbedCtx(ctx, g, opt) // Algorithm 3: + node reweighting
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("pair     PPR-only score   NRP score")
	fmt.Printf("(v2,v4)  %14.4f   %9.4f\n", ppr.Score(1, 3), reweighted.Score(1, 3))
	fmt.Printf("(v9,v7)  %14.4f   %9.4f\n", ppr.Score(8, 6), reweighted.Score(8, 6))

	if ppr.Score(1, 3) < ppr.Score(8, 6) && reweighted.Score(1, 3) > reweighted.Score(8, 6) {
		fmt.Println("\nNRP fixed the ranking: (v2,v4) now outscores (v9,v7),")
		fmt.Println("matching the common-neighbor intuition of the paper's §1.")
	} else {
		fmt.Println("\nunexpected ranking — see the paper's §1 discussion")
	}
}
