// PPR: online seed-set personalized PageRank on a synthetic community
// graph — query a live engine with the FORA two-phase estimator, compare
// plain queries against a FORA+ walk index, persist the index inside an
// NRPG snapshot, and serve /v1/ppr over HTTP for a moment.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/nrp-embed/nrp"
	"github.com/nrp-embed/nrp/internal/serve"
)

func main() {
	ctx := context.Background()
	g, err := nrp.GenSBM(nrp.SBMConfig{N: 20000, M: 120000, Communities: 10, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges\n\n", g.N, g.NumEdges)

	// One-shot query: forward push + Monte Carlo walks, (ε, δ) guarantee.
	seeds := []int{42, 4711, 9000}
	res, err := nrp.PPR(ctx, g, seeds, 5, nrp.WithEpsilon(0.3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-5 for seeds %v (pushed %d nodes, %d walks):\n", seeds, res.Stats.Pushed, res.Stats.Walks)
	for rank, s := range res.Scores {
		fmt.Printf("  %d. node %-6d  %.5f\n", rank+1, s.Node, s.Score)
	}

	// An engine amortizes workspaces across queries; a FORA+ walk index
	// precomputes walk endpoints so the walk phase becomes array lookups.
	eng, err := nrp.NewPPREngine(g, nrp.WithEpsilon(0.3))
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	wi, err := nrp.BuildWalkIndex(ctx, g, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwalk index: 64 walks/node built in %v\n", time.Since(start).Round(time.Millisecond))
	fast, err := nrp.NewPPREngine(g, nrp.WithEpsilon(0.3), nrp.WithWalkIndex(wi))
	if err != nil {
		log.Fatal(err)
	}
	for name, e := range map[string]*nrp.PPREngine{"fora ": eng, "fora+": fast} {
		start = time.Now()
		var st nrp.PPRStats
		for q := 0; q < 20; q++ {
			r, err := e.PPR(ctx, []int{q * 997 % g.N}, 10)
			if err != nil {
				log.Fatal(err)
			}
			st = r.Stats
		}
		fmt.Printf("%s: 20 queries in %v (last: push %v, walk %v, index=%v)\n",
			name, time.Since(start).Round(time.Millisecond),
			st.PushTime.Round(time.Microsecond), st.WalkTime.Round(time.Microsecond), st.UsedIndex)
	}

	// The walk index rides inside the NRPG snapshot (an optional section —
	// older readers skip it), so serving processes boot without
	// re-simulating walks.
	dir, err := os.MkdirTemp("", "nrp-ppr")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	snapPath := filepath.Join(dir, "graph.nrpg")
	if err := nrp.SaveGraphIndexed(snapPath, g, wi); err != nil {
		log.Fatal(err)
	}
	g2, wi2, closer, err := nrp.OpenGraphIndexed(snapPath, false)
	if err != nil {
		log.Fatal(err)
	}
	defer closer.Close()
	fmt.Printf("\nsnapshot round-trip: %d nodes, walk index %d walks/node\n", g2.N, wi2.WalksPerNode())

	// Serve /v1/ppr over HTTP for one request.
	sv := serve.NewServer(stub{}, serve.Config{Backend: "none", PPR: fast})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srvCtx, stop := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() { done <- serve.Serve(srvCtx, ln, sv.Handler(), time.Second) }()

	resp, err := http.Post("http://"+ln.Addr().String()+"/v1/ppr", "application/json",
		strings.NewReader(`{"seeds":[42,4711],"k":3}`))
	if err != nil {
		log.Fatal(err)
	}
	var pr serve.PPRResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("\nPOST /v1/ppr -> %d scores, %d walks, index=%v\n", len(pr.Scores), pr.Stats.Walks, pr.Stats.UsedIndex)
	stop()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
}

// stub satisfies nrp.Searcher for a server that only answers /v1/ppr.
type stub struct{}

func (stub) TopK(context.Context, int, int) ([]nrp.Neighbor, error)     { return nil, nil }
func (stub) TopKMany(context.Context, []int, int) ([]nrp.Result, error) { return nil, nil }
func (stub) ScoreMany(context.Context, []nrp.Pair) ([]float64, error)   { return nil, nil }
func (stub) N() int                                                     { return 0 }
