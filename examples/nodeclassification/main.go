// Node classification: embed a labeled graph with NRP, train a one-vs-rest
// logistic regression on the normalized embedding features of half the
// nodes, and report Micro-F1 on the rest — the protocol of the paper's
// §5.4 (Fig 6).
//
// This example uses the internal evaluation suite directly, showing how a
// downstream user would plug NRP features into their own classifier.
package main

import (
	"fmt"
	"log"

	"github.com/nrp-embed/nrp"
	"github.com/nrp-embed/nrp/internal/eval"
)

func main() {
	g, err := nrp.GenSBM(nrp.SBMConfig{
		N: 4000, M: 40000, Communities: 25, Seed: 17,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges, %d label classes\n", g.N, g.NumEdges, g.NumLabels)

	opt := nrp.DefaultOptions()
	opt.Dim = 64
	emb, err := nrp.Embed(g, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("train%   Micro-F1   Macro-F1")
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		res, err := eval.NodeClassification(emb.Features, g.Labels, g.NumLabels, frac,
			eval.LogRegConfig{Seed: 5, Epochs: 12})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5.0f%%   %8.4f   %8.4f\n", frac*100, res.Micro, res.Macro)
	}
}
