// Attributed graphs — the extension the paper's conclusion names as future
// work. Node attributes are smoothed through the same truncated
// personalized-PageRank operator NRP factorizes, then fused with the
// topology embeddings. With noisy-but-informative attributes, the fused
// model recovers labels from far fewer training nodes than topology alone.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/nrp-embed/nrp"
	"github.com/nrp-embed/nrp/internal/eval"
)

func main() {
	g, err := nrp.GenSBM(nrp.SBMConfig{
		N: 2000, M: 12000, Communities: 10, IntraFrac: 0.7, Seed: 31,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Attributes carry class signal buried under noise.
	attrs, err := nrp.GenAttributes(g, 16, 2.0, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges, %d classes, %d noisy attributes/node\n",
		g.N, g.NumEdges, g.NumLabels, len(attrs[0]))

	opt := nrp.DefaultAttributedOptions()
	opt.Dim = 32
	opt.Seed = 33
	ctx := context.Background()
	fused, _, err := nrp.EmbedAttributedCtx(ctx, g, attrs, opt)
	if err != nil {
		log.Fatal(err)
	}
	topoOnly, _, err := nrp.EmbedCtx(ctx, g, opt.Options)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ntrain%   topology-only Micro-F1   +attributes Micro-F1")
	for _, frac := range []float64{0.1, 0.3, 0.5} {
		cfg := eval.LogRegConfig{Seed: 9, Epochs: 12}
		topo, err := eval.NodeClassification(topoOnly.Features, g.Labels, g.NumLabels, frac, cfg)
		if err != nil {
			log.Fatal(err)
		}
		attr, err := eval.NodeClassification(fused.Features, g.Labels, g.NumLabels, frac, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5.0f%%   %22.4f   %20.4f\n", frac*100, topo.Micro, attr.Micro)
	}
}
