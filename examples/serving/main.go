// Serving: the full query-serving lifecycle on a synthetic community
// graph — embed, build each Searcher backend, compare their answers and
// per-query work, snapshot the quantized index, and serve it over HTTP
// for a moment with a live /v1/topk request.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"github.com/nrp-embed/nrp"
	"github.com/nrp-embed/nrp/internal/serve"
)

func main() {
	ctx := context.Background()
	g, err := nrp.GenSBM(nrp.SBMConfig{N: 3000, M: 24000, Communities: 12, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	opt := nrp.DefaultOptions()
	opt.Dim = 64
	emb, stats, err := nrp.EmbedCtx(ctx, g, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("embedded %d nodes in %v\n\n", g.N, stats.Total.Round(time.Millisecond))

	// One query through each backend: same answers, very different work.
	const u, k = 42, 10
	fmt.Println("backend    scanned  pruned  reranked  top hit")
	for _, backend := range []nrp.Backend{nrp.BackendExact, nrp.BackendQuantized, nrp.BackendPruned} {
		s, err := nrp.BuildIndex(emb, nrp.WithBackend(backend), nrp.WithShards(4))
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.TopKMany(ctx, []int{u}, k)
		if err != nil {
			log.Fatal(err)
		}
		st := res[0].Stats
		fmt.Printf("%-9s  %7d  %6d  %8d  node %d (%.4f)\n",
			backend, st.Scanned, st.Pruned, st.Reranked,
			res[0].Neighbors[0].Node, res[0].Neighbors[0].Score)
	}

	// Snapshot the quantized index and boot a server from it.
	s, err := nrp.BuildIndex(emb, nrp.WithBackend(nrp.BackendQuantized))
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "nrp-serving")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	snapPath := filepath.Join(dir, "index.bin")
	f, err := os.Create(snapPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := nrp.SaveIndex(f, s); err != nil {
		log.Fatal(err)
	}
	f.Close()
	f, err = os.Open(snapPath)
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := nrp.LoadIndex(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fi, _ := os.Stat(snapPath)
	fmt.Printf("\nsnapshot: %s (%.1f MB), reloaded %d nodes without re-quantizing\n",
		filepath.Base(snapPath), float64(fi.Size())/(1<<20), loaded.N())

	// Serve it over HTTP — what cmd/nrpserve does — and hit it once.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srvCtx, stop := context.WithCancel(ctx)
	done := make(chan error, 1)
	handler := serve.NewServer(loaded, serve.Config{Backend: "quantized"}).Handler()
	go func() { done <- serve.Serve(srvCtx, ln, handler, 2*time.Second) }()

	url := fmt.Sprintf("http://%s/v1/topk?u=%d&k=%d&stats=1", ln.Addr(), u, k)
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var tk serve.TopKResponse
	if err := json.Unmarshal(body, &tk); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GET %s -> %d neighbors, %dµs server-side\n",
		url, len(tk.Results[0].Neighbors), tk.Results[0].Stats.ElapsedUs)

	stop() // graceful drain, as on SIGTERM
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	fmt.Println("server drained cleanly")
}
