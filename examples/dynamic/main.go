// Dynamic graphs: the evolving-graph serving lifecycle end to end.
// Generate an evolving SBM (an old snapshot plus future edges, the
// paper's VK/Digg setting), embed the snapshot, bring it up behind a live
// HTTP server, then stream the future edges in as batched /v1/update +
// /v1/refresh calls while a client keeps querying /v1/topk — measuring
// that the index swaps never fail a query, and how the incremental
// refresh work compares to what a full re-embed would cost.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/nrp-embed/nrp"
	"github.com/nrp-embed/nrp/internal/graph"
	"github.com/nrp-embed/nrp/internal/serve"
)

func main() {
	ctx := context.Background()

	// An old snapshot plus 600 future edges arriving by triadic closure.
	base, future, err := graph.GenEvolving(graph.EvolvingConfig{
		Base: graph.SBMConfig{N: 3000, M: 24000, Communities: 12, Seed: 5},
		MNew: 600,
		Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base snapshot: %d nodes, %d edges; %d future edges to stream\n",
		base.N, base.NumEdges, len(future))

	opt := nrp.DefaultOptions()
	opt.Dim = 64
	start := time.Now()
	dyn, err := nrp.NewDynamicEmbedding(ctx, base, opt, nrp.DynamicConfig{
		Policy: nrp.RefreshIncremental,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial embed: %v\n", time.Since(start).Round(time.Millisecond))

	live, err := nrp.NewLiveIndex(dyn, nrp.WithBackend(nrp.BackendQuantized))
	if err != nil {
		log.Fatal(err)
	}

	// Serve it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srvCtx, stopSrv := context.WithCancel(ctx)
	srvDone := make(chan error, 1)
	handler := serve.NewLiveServer(live, serve.Config{Backend: live.Backend().String()}).Handler()
	go func() { srvDone <- serve.Serve(srvCtx, ln, handler, 5*time.Second) }()
	url := "http://" + ln.Addr().String()
	fmt.Printf("live server on %s\n", url)

	// Background load: clients querying /v1/topk throughout the updates.
	var stop atomic.Bool
	var queries, failures atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				resp, err := http.Get(fmt.Sprintf("%s/v1/topk?u=%d&k=10", url, (w*331+i*17)%base.N))
				queries.Add(1)
				if err != nil {
					failures.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
				}
			}
		}(w)
	}

	// Stream the future edges in 6 batches of updates + refreshes.
	const batches = 6
	per := (len(future) + batches - 1) / batches
	for b := 0; b < batches; b++ {
		lo, hi := b*per, min((b+1)*per, len(future))
		req := struct {
			Insert [][2]int `json:"insert"`
		}{}
		for _, e := range future[lo:hi] {
			req.Insert = append(req.Insert, [2]int{int(e.U), int(e.V)})
		}
		var ur serve.UpdateResponse
		postJSON(url+"/v1/update", req, &ur)
		var rr serve.RefreshResponse
		postJSON(url+"/v1/refresh", struct{}{}, &rr)
		fmt.Printf("batch %d: applied %d edges; refresh %s touched=%d push-mass=%.2f residual=%.4f in %v\n",
			b+1, ur.Applied, rr.Mode, rr.TouchedNodes, rr.PushMass, rr.ResidualMass,
			(time.Duration(rr.ElapsedUs) * time.Microsecond).Round(time.Millisecond))
	}

	stop.Store(true)
	wg.Wait()
	fmt.Printf("served %d queries during the updates, %d failures\n", queries.Load(), failures.Load())

	// For scale: what one full re-embed of the final graph costs.
	start = time.Now()
	if _, _, err := nrp.EmbedCtx(ctx, dyn.Graph(), opt); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full re-embed of the final graph for comparison: %v\n",
		time.Since(start).Round(time.Millisecond))

	stopSrv()
	if err := <-srvDone; err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained and stopped")
}

func postJSON(url string, body, out any) {
	raw, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s: status %d: %s", url, resp.StatusCode, payload)
	}
	if err := json.Unmarshal(payload, out); err != nil {
		log.Fatal(err)
	}
}
