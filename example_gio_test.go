package nrp_test

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/nrp-embed/nrp"
)

// ExampleLoadGraph ingests a text edge list, persists it as an NRPG
// binary snapshot, and reopens it both ways: LoadGraph sniffs the format
// from the magic bytes (heap load, checksum-verified), and LoadGraphMmap
// maps the snapshot zero-copy — the boot path nrpserve uses so
// multi-gigabyte graphs start serving in milliseconds.
func ExampleLoadGraph() {
	dir, err := os.MkdirTemp("", "nrp-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	edgePath := filepath.Join(dir, "graph.txt")
	edges := "# a tiny directed graph\n0 1\n1 2\n2 0\n2 3\n"
	if err := os.WriteFile(edgePath, []byte(edges), 0o644); err != nil {
		log.Fatal(err)
	}

	g, err := nrp.LoadGraph(edgePath, true) // text: parsed in parallel
	if err != nil {
		log.Fatal(err)
	}

	snapPath := filepath.Join(dir, "graph.nrpg")
	if err := nrp.SaveGraph(snapPath, g); err != nil {
		log.Fatal(err)
	}

	again, err := nrp.LoadGraph(snapPath, false) // sniffed as NRPG; stored directedness wins
	if err != nil {
		log.Fatal(err)
	}
	mapped, closer, err := nrp.LoadGraphMmap(snapPath) // zero-copy boot
	if err != nil {
		log.Fatal(err)
	}
	defer closer.Close()

	fmt.Printf("text:     %d nodes, %d edges, directed=%v\n", g.N, g.NumEdges, g.Directed)
	fmt.Printf("snapshot: %d nodes, %d edges, directed=%v\n", again.N, again.NumEdges, again.Directed)
	fmt.Printf("mmap:     %d nodes, %d edges, out(2)=%v\n", mapped.N, mapped.NumEdges, mapped.OutNeighbors(2))
	// Output:
	// text:     4 nodes, 4 edges, directed=true
	// snapshot: 4 nodes, 4 edges, directed=true
	// mmap:     4 nodes, 4 edges, out(2)=[0 3]
}
