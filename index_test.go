package nrp

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"testing"
)

func testEmbedding(t *testing.T, n int) *Embedding {
	t.Helper()
	g, err := GenSBM(SBMConfig{N: n, M: 6 * n, Communities: 5, Directed: true, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Dim = 16
	emb, _, err := EmbedCtx(context.Background(), g, opt)
	if err != nil {
		t.Fatal(err)
	}
	return emb
}

// bruteTopK is the reference: score every candidate, argsort, take k.
func bruteTopK(emb *Embedding, u, k int, includeSelf bool) []Neighbor {
	var all []Neighbor
	for v := 0; v < emb.N(); v++ {
		if v == u && !includeSelf {
			continue
		}
		all = append(all, Neighbor{Node: v, Score: emb.Score(u, v)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].Node < all[j].Node
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

func TestTopKMatchesBruteForce(t *testing.T) {
	emb := testEmbedding(t, 500)
	rng := rand.New(rand.NewSource(7))
	for _, workers := range []int{1, 3, 8} {
		ix := NewIndex(emb, IndexOptions{Workers: workers})
		for trial := 0; trial < 8; trial++ {
			u := rng.Intn(emb.N())
			k := 1 + rng.Intn(20)
			got, err := ix.TopK(context.Background(), u, k)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteTopK(emb, u, k, false)
			if len(got) != len(want) {
				t.Fatalf("workers=%d u=%d k=%d: got %d results, want %d", workers, u, k, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("workers=%d u=%d k=%d rank %d: got %+v want %+v", workers, u, k, i, got[i], want[i])
				}
			}
		}
	}
}

func TestTopKIncludeSelfAndClamp(t *testing.T) {
	emb := testEmbedding(t, 60)
	ix := NewIndex(emb, IndexOptions{IncludeSelf: true})
	got, err := ix.TopK(context.Background(), 4, emb.N()+50)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != emb.N() {
		t.Fatalf("clamped k: got %d results, want %d", len(got), emb.N())
	}
	want := bruteTopK(emb, 4, emb.N(), true)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("rank %d: got %+v want %+v", i, got[i], want[i])
		}
	}

	// Excluding self must never return u.
	ixNoSelf := NewIndex(emb)
	res, err := ixNoSelf.TopK(context.Background(), 4, emb.N()+50)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != emb.N()-1 {
		t.Fatalf("self-excluding clamp: %d results", len(res))
	}
	for _, nb := range res {
		if nb.Node == 4 {
			t.Fatal("TopK returned the query node")
		}
	}
}

func TestTopKValidation(t *testing.T) {
	emb := testEmbedding(t, 40)
	ix := NewIndex(emb)
	ctx := context.Background()
	if _, err := ix.TopK(ctx, -1, 5); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, err := ix.TopK(ctx, emb.N(), 5); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := ix.TopK(ctx, 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestTopKCancelled(t *testing.T) {
	emb := testEmbedding(t, 40)
	ix := NewIndex(emb)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ix.TopK(ctx, 0, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, err := ix.ScoreMany(ctx, []Pair{{0, 1}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("ScoreMany: want context.Canceled, got %v", err)
	}
}

func TestScoreMany(t *testing.T) {
	emb := testEmbedding(t, 200)
	rng := rand.New(rand.NewSource(13))
	pairs := make([]Pair, 300)
	for i := range pairs {
		pairs[i] = Pair{U: rng.Intn(emb.N()), V: rng.Intn(emb.N())}
	}
	for _, workers := range []int{1, 4} {
		ix := NewIndex(emb, IndexOptions{Workers: workers})
		got, err := ix.ScoreMany(context.Background(), pairs)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(pairs) {
			t.Fatalf("got %d scores for %d pairs", len(got), len(pairs))
		}
		for i, p := range pairs {
			if got[i] != emb.Score(p.U, p.V) {
				t.Fatalf("workers=%d pair %d: got %v want %v", workers, i, got[i], emb.Score(p.U, p.V))
			}
		}
	}

	ix := NewIndex(emb)
	if _, err := ix.ScoreMany(context.Background(), []Pair{{0, emb.N()}}); err == nil {
		t.Fatal("out-of-range pair accepted")
	}
	empty, err := ix.ScoreMany(context.Background(), nil)
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty batch: %v, %v", empty, err)
	}
}

// TestIndexIsSearcher pins the interface contract future backends implement.
func TestIndexIsSearcher(t *testing.T) {
	emb := testEmbedding(t, 40)
	var s Searcher = NewIndex(emb)
	if _, err := s.TopK(context.Background(), 1, 3); err != nil {
		t.Fatal(err)
	}
}
