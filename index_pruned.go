package nrp

import (
	"context"
	"sort"
	"time"

	"github.com/nrp-embed/nrp/internal/matrix"
	"github.com/nrp-embed/nrp/internal/par"
)

// prunedIndex is the norm-pruned Searcher backend. At build time the
// backward embeddings are sorted by decreasing ‖Y_v‖ and copied into that
// order; a query scans positions in decreasing-norm order and stops as
// soon as the Cauchy–Schwarz bound ‖X_u‖·‖Y_v‖ falls below the current
// k-th best score — every remaining candidate is then provably weaker.
// Results are exact; the win over BackendExact grows with the skew of the
// norm distribution, which NRP's degree-targeted reweighting makes heavy-
// tailed on real graphs.
//
// Shards take strided position sequences (w, w+S, w+2S, …) so each shard
// sees the global decreasing-norm profile and its private top-k heap
// saturates with strong candidates early, triggering its early exit after
// a few multiples of k candidates instead of a shard-local norm tail.
type prunedIndex struct {
	emb *Embedding
	cfg indexConfig
	// perm maps scan position to original node id, norms[i] = ‖Y_perm[i]‖,
	// decreasing; ys holds Y's rows in perm order for scan locality.
	perm  []int32
	norms []float64
	ys    *matrix.Dense
}

var _ Searcher = (*prunedIndex)(nil)

func newPrunedIndex(emb *Embedding, cfg indexConfig) *prunedIndex {
	n := emb.N()
	norms := make([]float64, n)
	pool := par.New(cfg.buildThreads)
	pool.For(n, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			norms[v] = matrix.Norm2(emb.Y.Row(v))
		}
	})
	perm := make([]int32, n)
	for v := range perm {
		perm[v] = int32(v)
	}
	sort.SliceStable(perm, func(i, j int) bool { return norms[perm[i]] > norms[perm[j]] })
	return loadedPrunedIndex(emb, cfg, perm, norms)
}

// loadedPrunedIndex rebuilds a pruned index from a permutation without
// re-sorting; the reordered row copy is always rebuilt (it is cheaper to
// copy than to store twice). nodeNorms, when non-nil, supplies the
// per-node norms already computed by the build path; the snapshot load
// path passes nil and recomputes them from the rows.
//
// Under WithShardSlice the permutation is filtered to the slice's node
// range first: a subsequence of a norm-sorted sequence stays sorted, so
// the early-exit bound is unchanged and per-slice results remain exact
// over the slice's candidates.
func loadedPrunedIndex(emb *Embedding, cfg indexConfig, perm []int32, nodeNorms []float64) *prunedIndex {
	n, dim := emb.N(), emb.Dim()
	if rlo, rhi := cfg.candRange(n); rlo != 0 || rhi != n {
		kept := make([]int32, 0, rhi-rlo)
		for _, v := range perm {
			if int(v) >= rlo && int(v) < rhi {
				kept = append(kept, v)
			}
		}
		perm = kept
	}
	m := len(perm)
	ix := &prunedIndex{emb: emb, cfg: cfg, perm: perm,
		norms: make([]float64, m), ys: matrix.NewDense(m, dim)}
	par.New(cfg.buildThreads).For(m, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			v := perm[i]
			copy(ix.ys.Row(i), emb.Y.Row(int(v)))
			if nodeNorms != nil {
				ix.norms[i] = nodeNorms[v]
			} else {
				ix.norms[i] = matrix.Norm2(ix.ys.Row(i))
			}
		}
	})
	return ix
}

func (ix *prunedIndex) N() int { return ix.emb.N() }

// Backend reports BackendPruned.
func (ix *prunedIndex) Backend() Backend { return BackendPruned }

func (ix *prunedIndex) TopK(ctx context.Context, u, k int) ([]Neighbor, error) {
	nbrs, _, err := ix.topkOne(ctx, u, k, true)
	return nbrs, err
}

func (ix *prunedIndex) TopKMany(ctx context.Context, us []int, k int) ([]Result, error) {
	return topkMany(ctx, ix.emb.N(), ix.cfg.shards, us, k, ix.topkOne)
}

func (ix *prunedIndex) ScoreMany(ctx context.Context, pairs []Pair) ([]float64, error) {
	return scoreManyExact(ctx, ix.emb, pairs, ix.cfg.shards)
}

func (ix *prunedIndex) topkOne(ctx context.Context, u, k int, parallel bool) ([]Neighbor, QueryStats, error) {
	start := time.Now()
	var stats QueryStats
	n := ix.emb.N()
	if err := validateQuery(n, u, k); err != nil {
		return nil, stats, err
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	if avail := ix.cfg.availCandidates(n, u); k > avail {
		k = avail
	}
	if k <= 0 {
		return nil, stats, nil
	}

	// m is the number of scan positions: all n nodes, or the slice's
	// share when the permutation was filtered under WithShardSlice.
	m := len(ix.perm)
	xu := ix.emb.X.Row(u)
	xnorm := matrix.Norm2(xu)
	scan := func(ctx context.Context, w, shards int, h *topkHeap) (scanned, pruned int, err error) {
		steps := 0
		for p := w; p < m; p += shards {
			if steps%ctxCheckStride == 0 {
				if err := ctx.Err(); err != nil {
					return scanned, pruned, err
				}
			}
			steps++
			// Positions are in decreasing ‖Y‖ order: once the heap is full
			// and the bound cannot strictly beat its weakest entry, no
			// later position can either. The strict comparison preserves
			// exactness under the ascending-node-id tie-break: an exact
			// tie with the threshold could still displace a higher id.
			if h.full() && xnorm*ix.norms[p] < h.min().Score {
				pruned = (m - p + shards - 1) / shards
				break
			}
			v := int(ix.perm[p])
			if v == u && !ix.cfg.includeSelf {
				continue
			}
			h.offer(v, matrix.Dot(xu, ix.ys.Row(p)))
			scanned++
		}
		return scanned, pruned, nil
	}
	nbrs, stats, err := runShardScan(ctx, m, ix.cfg.shards, k, parallel, scan)
	stats.Elapsed = time.Since(start)
	return nbrs, stats, err
}
