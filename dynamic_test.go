package nrp

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/nrp-embed/nrp/internal/graph"
)

// dynFixture builds a small evolving graph and a live dynamic embedding
// over its base snapshot.
func dynFixture(t *testing.T, cfg DynamicConfig) (*DynamicEmbedding, []Edge) {
	t.Helper()
	base, newEdges, err := graph.GenEvolving(graph.EvolvingConfig{
		Base: graph.SBMConfig{N: 250, M: 1500, Communities: 5, Seed: 13},
		MNew: 200,
		Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Dim = 32
	dyn, err := NewDynamicEmbedding(context.Background(), base, opt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return dyn, newEdges
}

func insertBatch(edges []Edge) []EdgeUpdate {
	ups := make([]EdgeUpdate, len(edges))
	for i, e := range edges {
		ups[i] = EdgeUpdate{U: e.U, V: e.V, Op: UpdateInsert}
	}
	return ups
}

// TestLiveIndexQueryDuringSwap hammers TopK, TopKMany and ScoreMany from
// many goroutines while the main goroutine repeatedly applies updates and
// swaps the index underneath — the zero-downtime guarantee. Run under
// -race this also proves the RCU discipline: queries touch only immutable
// snapshots.
func TestLiveIndexQueryDuringSwap(t *testing.T) {
	dyn, newEdges := dynFixture(t, DynamicConfig{Policy: RefreshIncremental, ResidualBudget: 1e9})
	live, err := NewLiveIndex(dyn, WithBackend(BackendQuantized), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	n := live.N()

	var (
		stop     atomic.Bool
		queries  atomic.Int64
		failures atomic.Int64
		firstErr atomic.Value
	)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				u := (w*1009 + i*31) % n
				var err error
				switch i % 3 {
				case 0:
					_, err = live.TopK(ctx, u, 10)
				case 1:
					_, err = live.TopKMany(ctx, []int{u, (u + 7) % n}, 5)
				default:
					_, err = live.ScoreMany(ctx, []Pair{{U: u, V: (u + 3) % n}})
				}
				queries.Add(1)
				if err != nil {
					failures.Add(1)
					firstErr.CompareAndSwap(nil, err)
				}
			}
		}(w)
	}

	// Stream the future edges in batches, refreshing (and swapping) after
	// each batch while the workers keep querying.
	const batch = 25
	swaps := 0
	for lo := 0; lo < len(newEdges); lo += batch {
		hi := min(lo+batch, len(newEdges))
		if _, err := live.ApplyUpdates(ctx, insertBatch(newEdges[lo:hi])); err != nil {
			t.Fatal(err)
		}
		st, err := live.Refresh(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Mode == RefreshedSkipped {
			t.Fatalf("refresh skipped with %d pending updates", hi-lo)
		}
		swaps++
	}
	stop.Store(true)
	wg.Wait()

	if got := failures.Load(); got != 0 {
		t.Fatalf("%d of %d queries failed during %d swaps; first error: %v",
			got, queries.Load(), swaps, firstErr.Load())
	}
	if queries.Load() == 0 || swaps == 0 {
		t.Fatalf("degenerate run: %d queries, %d swaps", queries.Load(), swaps)
	}
	if live.Pending() != 0 {
		t.Fatalf("%d updates left pending", live.Pending())
	}
	t.Logf("%d queries across %d swaps, zero failures", queries.Load(), swaps)
}

// TestLiveIndexSnapshotConsistency verifies the RCU capture: a Searcher
// captured before a swap keeps serving the old embedding, while the live
// wrapper serves the new one.
func TestLiveIndexSnapshotConsistency(t *testing.T) {
	dyn, newEdges := dynFixture(t, DynamicConfig{Policy: RefreshFull})
	live, err := NewLiveIndex(dyn, WithBackend(BackendExact))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	old := live.Searcher()
	oldTop, err := old.TopK(ctx, 0, 5)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := live.ApplyUpdates(ctx, insertBatch(newEdges)); err != nil {
		t.Fatal(err)
	}
	st, err := live.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != RefreshedFull || !st.WarmStart {
		t.Fatalf("stats %+v, want warm full refresh", st)
	}
	if live.Searcher() == old {
		t.Fatal("refresh did not swap the index")
	}

	// The captured snapshot still answers, identically to before.
	oldTop2, err := old.TopK(ctx, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range oldTop {
		if oldTop[i] != oldTop2[i] {
			t.Fatalf("old snapshot drifted: %v vs %v", oldTop, oldTop2)
		}
	}
}

// TestLiveIndexRefreshSkippedKeepsIndex ensures a no-op refresh does not
// rebuild or swap anything.
func TestLiveIndexRefreshSkippedKeepsIndex(t *testing.T) {
	dyn, _ := dynFixture(t, DynamicConfig{})
	live, err := NewLiveIndex(dyn)
	if err != nil {
		t.Fatal(err)
	}
	before := live.Searcher()
	st, err := live.Refresh(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != RefreshedSkipped {
		t.Fatalf("mode %q, want skipped", st.Mode)
	}
	if live.Searcher() != before {
		t.Fatal("skipped refresh swapped the index")
	}
}

// TestDynamicEmbeddingOptionValidation covers the public constructor's
// fail-fast paths.
func TestDynamicEmbeddingOptionValidation(t *testing.T) {
	g, err := GenSBM(SBMConfig{N: 50, M: 200, Communities: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bad := DefaultOptions()
	bad.Dim = 3 // odd
	if _, err := NewDynamicEmbedding(context.Background(), g, bad, DynamicConfig{}); err == nil {
		t.Fatal("expected options validation error")
	}
	if _, err := ParseRefreshPolicy("nope"); err == nil {
		t.Fatal("expected policy parse error")
	}
	// Cancelled initial embed surfaces the context error.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	opt := DefaultOptions()
	opt.Dim = 16
	if _, err := NewDynamicEmbedding(cancelled, g, opt, DynamicConfig{}); err == nil {
		t.Fatal("expected cancellation error")
	}
}

// TestLiveIndexRefreshUnderCancellation: a cancelled refresh leaves the
// serving index intact and retryable.
func TestLiveIndexRefreshUnderCancellation(t *testing.T) {
	dyn, newEdges := dynFixture(t, DynamicConfig{Policy: RefreshFull})
	live, err := NewLiveIndex(dyn)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := live.ApplyUpdates(context.Background(), insertBatch(newEdges)); err != nil {
		t.Fatal(err)
	}
	before := live.Searcher()
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	if _, err := live.Refresh(ctx); err == nil {
		t.Fatal("expected cancellation error")
	}
	if live.Searcher() != before {
		t.Fatal("failed refresh must not swap the index")
	}
	if _, err := live.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	if live.Searcher() == before {
		t.Fatal("retried refresh should swap the index")
	}
}
