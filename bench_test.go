package nrp

// This file regenerates every table and figure of the paper's evaluation
// section as Go benchmarks (DESIGN.md §4 maps each to its experiment), plus
// the design-choice ablations of DESIGN.md §5 and micro-benchmarks of the
// core kernels. Figure benchmarks run the experiment harness at a reduced
// "bench" scale (documented per benchmark) and print the resulting rows —
// the series shapes, not the absolute numbers, are the reproduction target.
//
// Run everything:  go test -bench=. -benchmem
// One figure:      go test -bench=BenchmarkFig4 -benchmem

import (
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"github.com/nrp-embed/nrp/internal/core"
	"github.com/nrp-embed/nrp/internal/eval"
	"github.com/nrp-embed/nrp/internal/experiments"
	"github.com/nrp-embed/nrp/internal/graph"
	"github.com/nrp-embed/nrp/internal/matrix"
	"github.com/nrp-embed/nrp/internal/ppr"
	"github.com/nrp-embed/nrp/internal/svd"
)

// runExperiment executes a registered experiment once per benchmark
// iteration, printing its tables on the first iteration only.
func runExperiment(b *testing.B, name string, cfg experiments.Config) {
	b.Helper()
	r, err := experiments.Find(name)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		tables, err := r.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println()
			for _, t := range tables {
				if err := t.Render(os.Stdout); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// benchScale shrinks the harness datasets so each figure benchmark stays in
// the tens of seconds on one core; cmd/nrpexp reproduces the full-size
// quick and -full profiles.
const benchScale = 0.12

func BenchmarkTable1PPRExample(b *testing.B) {
	runExperiment(b, "table1", experiments.Config{})
}

func BenchmarkFig2ApproxPPRExample(b *testing.B) {
	runExperiment(b, "example1", experiments.Config{Seed: 7})
}

func BenchmarkTable3DatasetStats(b *testing.B) {
	runExperiment(b, "table3", experiments.Config{Scale: 0.1, Seed: 1})
}

func BenchmarkTable4EvolvingStats(b *testing.B) {
	runExperiment(b, "table4", experiments.Config{Scale: 0.2, Seed: 1})
}

func BenchmarkFig4LinkPrediction(b *testing.B) {
	runExperiment(b, "fig4", experiments.Config{
		Scale: benchScale, Seed: 1,
		DatasetNames: []string{"wiki-sim", "blogcatalog-sim"},
	})
}

func BenchmarkFig5GraphReconstruction(b *testing.B) {
	runExperiment(b, "fig5", experiments.Config{
		Scale: benchScale, Dim: 64, Seed: 1,
		DatasetNames: []string{"wiki-sim"},
	})
}

func BenchmarkFig6NodeClassification(b *testing.B) {
	runExperiment(b, "fig6", experiments.Config{
		Scale: benchScale, Dim: 64, Seed: 1,
		DatasetNames: []string{"wiki-sim", "blogcatalog-sim"},
	})
}

func BenchmarkFig7RunningTime(b *testing.B) {
	runExperiment(b, "fig7", experiments.Config{
		Scale: benchScale, Seed: 1,
		DatasetNames: []string{"wiki-sim", "blogcatalog-sim"},
	})
}

func BenchmarkFig8ParameterAUC(b *testing.B) {
	runExperiment(b, "fig8", experiments.Config{
		Scale: benchScale, Dim: 64, Seed: 1,
	})
}

func BenchmarkFig9EvolvingLinkPrediction(b *testing.B) {
	runExperiment(b, "fig9", experiments.Config{
		Scale: 0.2, Dim: 64, Seed: 1,
	})
}

func BenchmarkFig10Scalability(b *testing.B) {
	runExperiment(b, "fig10", experiments.Config{Seed: 1})
}

func BenchmarkFig11ParameterRunningTime(b *testing.B) {
	runExperiment(b, "fig11", experiments.Config{
		Scale: benchScale, Dim: 64, Seed: 1,
	})
}

// --- Ablations (DESIGN.md §5) -------------------------------------------

// ablationGraph is the shared workload for the design-choice ablations:
// wiki-sim at bench scale with a 30% link-prediction split.
func ablationSplit(b *testing.B) (*graph.Graph, *eval.LinkPredSplit) {
	b.Helper()
	ds, err := experiments.FindDataset("wiki-sim")
	if err != nil {
		b.Fatal(err)
	}
	g, err := ds.Gen(benchScale)
	if err != nil {
		b.Fatal(err)
	}
	split, err := eval.NewLinkPredSplit(g, 0.3, 42)
	if err != nil {
		b.Fatal(err)
	}
	return g, split
}

func ablationAUC(b *testing.B, split *eval.LinkPredSplit, opt core.Options) (float64, time.Duration) {
	b.Helper()
	start := time.Now()
	emb, err := core.NRP(split.Train, opt)
	if err != nil {
		b.Fatal(err)
	}
	elapsed := time.Since(start)
	auc, err := eval.LinkPredictionAUC(emb, split)
	if err != nil {
		b.Fatal(err)
	}
	return auc, elapsed
}

// BenchmarkAblationExactB1 compares the paper's AM-GM approximation of the
// b₁ coordinate-descent term against its exact O(k′²) evaluation.
func BenchmarkAblationExactB1(b *testing.B) {
	_, split := ablationSplit(b)
	for i := 0; i < b.N; i++ {
		opt := core.DefaultOptions()
		opt.Dim = 64
		aucApprox, tApprox := ablationAUC(b, split, opt)
		opt.ExactB1 = true
		aucExact, tExact := ablationAUC(b, split, opt)
		if i == 0 {
			fmt.Printf("\nablation exact-b1 (wiki-sim ×%.2f): approx AUC=%.4f (%.2fs)  exact AUC=%.4f (%.2fs)\n",
				benchScale, aucApprox, tApprox.Seconds(), aucExact, tExact.Seconds())
		}
	}
}

// BenchmarkAblationFactorizer compares BKSVD against plain randomized
// subspace iteration as Algorithm 1's factorizer.
func BenchmarkAblationFactorizer(b *testing.B) {
	_, split := ablationSplit(b)
	for i := 0; i < b.N; i++ {
		opt := core.DefaultOptions()
		opt.Dim = 64
		aucBK, tBK := ablationAUC(b, split, opt)
		opt.SubspaceIteration = true
		aucSI, tSI := ablationAUC(b, split, opt)
		if i == 0 {
			fmt.Printf("\nablation factorizer (wiki-sim ×%.2f): BKSVD AUC=%.4f (%.2fs)  subspace AUC=%.4f (%.2fs)\n",
				benchScale, aucBK, tBK.Seconds(), aucSI, tSI.Seconds())
		}
	}
}

// BenchmarkAblationWeightTargets compares degree-targeted reweighting
// (Eq. 5) against uniform targets, isolating the value of degree
// information in the objective.
func BenchmarkAblationWeightTargets(b *testing.B) {
	g, split := ablationSplit(b)
	opt := core.DefaultOptions()
	opt.Dim = 64
	for i := 0; i < b.N; i++ {
		base, err := core.ApproxPPR(split.Train, opt)
		if err != nil {
			b.Fatal(err)
		}
		apply := func(fw, bw []float64) float64 {
			emb := &core.Embedding{X: base.X.Clone(), Y: base.Y.Clone()}
			for v := 0; v < split.Train.N; v++ {
				emb.X.ScaleRow(v, fw[v])
				emb.Y.ScaleRow(v, bw[v])
			}
			auc, err := eval.LinkPredictionAUC(emb, split)
			if err != nil {
				b.Fatal(err)
			}
			return auc
		}
		fwDeg, bwDeg, err := core.LearnWeights(split.Train, base, opt)
		if err != nil {
			b.Fatal(err)
		}
		uniformIn := make([]float64, g.N)
		uniformOut := make([]float64, g.N)
		avg := float64(2*split.Train.NumEdges) / float64(g.N)
		for v := range uniformIn {
			uniformIn[v] = avg
			uniformOut[v] = avg
		}
		fwUni, bwUni, err := core.LearnWeightsWithTargets(base, uniformIn, uniformOut, opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\nablation weight targets (wiki-sim ×%.2f): degree AUC=%.4f  uniform AUC=%.4f  none AUC=%.4f\n",
				benchScale, apply(fwDeg, bwDeg), apply(fwUni, bwUni), mustAUC(b, base, split))
		}
	}
}

func mustAUC(b *testing.B, s eval.Scorer, split *eval.LinkPredSplit) float64 {
	b.Helper()
	auc, err := eval.LinkPredictionAUC(s, split)
	if err != nil {
		b.Fatal(err)
	}
	return auc
}

// --- Kernel micro-benchmarks ---------------------------------------------

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	g, err := graph.GenSBM(graph.SBMConfig{N: 20000, M: 200000, Communities: 20, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkKernelSparseMulDense measures the CSR × dense product at the
// shape Algorithm 1's iterations use (m=200k, k′=64).
func BenchmarkKernelSparseMulDense(b *testing.B) {
	g := benchGraph(b)
	p := g.Transition()
	rng := rand.New(rand.NewSource(1))
	x := matrix.GaussianDense(g.N, 64, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.MulDense(x)
	}
}

// BenchmarkKernelBKSVD measures the randomized factorization alone.
func BenchmarkKernelBKSVD(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svd.BKSVD(g.Adj, svd.Options{Rank: 32, Epsilon: 0.2, Rng: rand.New(rand.NewSource(1))}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelApproxPPR measures Algorithm 1 end to end.
func BenchmarkKernelApproxPPR(b *testing.B) {
	g := benchGraph(b)
	opt := core.DefaultOptions()
	opt.Dim = 64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ApproxPPR(g, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelReweighting measures the ℓ₂ coordinate-descent epochs of
// Algorithm 3 (lines 3-7) in isolation.
func BenchmarkKernelReweighting(b *testing.B) {
	g := benchGraph(b)
	opt := core.DefaultOptions()
	opt.Dim = 64
	emb, err := core.ApproxPPR(g, opt)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.LearnWeights(g, emb, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelForwardPush measures the push primitive underlying STRAP.
func BenchmarkKernelForwardPush(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ppr.ForwardPush(g, i%g.N, 0.15, 1e-5)
	}
}
