package nrp

// This file regenerates every table and figure of the paper's evaluation
// section as Go benchmarks (DESIGN.md §4 maps each to its experiment), plus
// the design-choice ablations of DESIGN.md §5 and micro-benchmarks of the
// core kernels. Figure benchmarks run the experiment harness at a reduced
// "bench" scale (documented per benchmark) and print the resulting rows —
// the series shapes, not the absolute numbers, are the reproduction target.
//
// Run everything:  go test -bench=. -benchmem
// One figure:      go test -bench=BenchmarkFig4 -benchmem

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/nrp-embed/nrp/internal/ann"
	"github.com/nrp-embed/nrp/internal/core"
	"github.com/nrp-embed/nrp/internal/dynamic"
	"github.com/nrp-embed/nrp/internal/eval"
	"github.com/nrp-embed/nrp/internal/experiments"
	"github.com/nrp-embed/nrp/internal/gio"
	"github.com/nrp-embed/nrp/internal/graph"
	"github.com/nrp-embed/nrp/internal/matrix"
	"github.com/nrp-embed/nrp/internal/par"
	"github.com/nrp-embed/nrp/internal/ppr"
	"github.com/nrp-embed/nrp/internal/svd"
)

// TestMain flushes the serving-backend benchmark records to
// BENCH_topk.json, the dynamic-refresh records to BENCH_dynamic.json and
// the parallel-build records to BENCH_build.json after the run (see
// writeTopKBenchRecords, writeDynamicBenchRecord, writeBuildBenchRecord),
// so the CI benchmark smoke steps leave machine-readable perf traces
// behind.
func TestMain(m *testing.M) {
	code := m.Run()
	if err := writeTopKBenchRecords(); err != nil {
		fmt.Fprintln(os.Stderr, "writing BENCH_topk.json:", err)
		if code == 0 {
			code = 1
		}
	}
	if err := writeDynamicBenchRecord(); err != nil {
		fmt.Fprintln(os.Stderr, "writing BENCH_dynamic.json:", err)
		if code == 0 {
			code = 1
		}
	}
	if err := writeBuildBenchRecord(); err != nil {
		fmt.Fprintln(os.Stderr, "writing BENCH_build.json:", err)
		if code == 0 {
			code = 1
		}
	}
	if err := writeIngestBenchRecord(); err != nil {
		fmt.Fprintln(os.Stderr, "writing BENCH_ingest.json:", err)
		if code == 0 {
			code = 1
		}
	}
	if err := writePPRBenchRecord(); err != nil {
		fmt.Fprintln(os.Stderr, "writing BENCH_ppr.json:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// runExperiment executes a registered experiment once per benchmark
// iteration, printing its tables on the first iteration only.
func runExperiment(b *testing.B, name string, cfg experiments.Config) {
	b.Helper()
	r, err := experiments.Find(name)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		tables, err := r.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println()
			for _, t := range tables {
				if err := t.Render(os.Stdout); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// benchScale shrinks the harness datasets so each figure benchmark stays in
// the tens of seconds on one core; cmd/nrpexp reproduces the full-size
// quick and -full profiles.
const benchScale = 0.12

func BenchmarkTable1PPRExample(b *testing.B) {
	runExperiment(b, "table1", experiments.Config{})
}

func BenchmarkFig2ApproxPPRExample(b *testing.B) {
	runExperiment(b, "example1", experiments.Config{Seed: 7})
}

func BenchmarkTable3DatasetStats(b *testing.B) {
	runExperiment(b, "table3", experiments.Config{Scale: 0.1, Seed: 1})
}

func BenchmarkTable4EvolvingStats(b *testing.B) {
	runExperiment(b, "table4", experiments.Config{Scale: 0.2, Seed: 1})
}

func BenchmarkFig4LinkPrediction(b *testing.B) {
	runExperiment(b, "fig4", experiments.Config{
		Scale: benchScale, Seed: 1,
		DatasetNames: []string{"wiki-sim", "blogcatalog-sim"},
	})
}

func BenchmarkFig5GraphReconstruction(b *testing.B) {
	runExperiment(b, "fig5", experiments.Config{
		Scale: benchScale, Dim: 64, Seed: 1,
		DatasetNames: []string{"wiki-sim"},
	})
}

func BenchmarkFig6NodeClassification(b *testing.B) {
	runExperiment(b, "fig6", experiments.Config{
		Scale: benchScale, Dim: 64, Seed: 1,
		DatasetNames: []string{"wiki-sim", "blogcatalog-sim"},
	})
}

func BenchmarkFig7RunningTime(b *testing.B) {
	runExperiment(b, "fig7", experiments.Config{
		Scale: benchScale, Seed: 1,
		DatasetNames: []string{"wiki-sim", "blogcatalog-sim"},
	})
}

func BenchmarkFig8ParameterAUC(b *testing.B) {
	runExperiment(b, "fig8", experiments.Config{
		Scale: benchScale, Dim: 64, Seed: 1,
	})
}

func BenchmarkFig9EvolvingLinkPrediction(b *testing.B) {
	runExperiment(b, "fig9", experiments.Config{
		Scale: 0.2, Dim: 64, Seed: 1,
	})
}

func BenchmarkFig10Scalability(b *testing.B) {
	runExperiment(b, "fig10", experiments.Config{Seed: 1})
}

func BenchmarkFig11ParameterRunningTime(b *testing.B) {
	runExperiment(b, "fig11", experiments.Config{
		Scale: benchScale, Dim: 64, Seed: 1,
	})
}

// --- Ablations (DESIGN.md §5) -------------------------------------------

// ablationGraph is the shared workload for the design-choice ablations:
// wiki-sim at bench scale with a 30% link-prediction split.
func ablationSplit(b *testing.B) (*graph.Graph, *eval.LinkPredSplit) {
	b.Helper()
	ds, err := experiments.FindDataset("wiki-sim")
	if err != nil {
		b.Fatal(err)
	}
	g, err := ds.Gen(benchScale)
	if err != nil {
		b.Fatal(err)
	}
	split, err := eval.NewLinkPredSplit(g, 0.3, 42)
	if err != nil {
		b.Fatal(err)
	}
	return g, split
}

func ablationAUC(b *testing.B, split *eval.LinkPredSplit, opt core.Options) (float64, time.Duration) {
	b.Helper()
	start := time.Now()
	emb, err := core.NRP(split.Train, opt)
	if err != nil {
		b.Fatal(err)
	}
	elapsed := time.Since(start)
	auc, err := eval.LinkPredictionAUC(emb, split)
	if err != nil {
		b.Fatal(err)
	}
	return auc, elapsed
}

// BenchmarkAblationExactB1 compares the paper's AM-GM approximation of the
// b₁ coordinate-descent term against its exact O(k′²) evaluation.
func BenchmarkAblationExactB1(b *testing.B) {
	_, split := ablationSplit(b)
	for i := 0; i < b.N; i++ {
		opt := core.DefaultOptions()
		opt.Dim = 64
		aucApprox, tApprox := ablationAUC(b, split, opt)
		opt.ExactB1 = true
		aucExact, tExact := ablationAUC(b, split, opt)
		if i == 0 {
			fmt.Printf("\nablation exact-b1 (wiki-sim ×%.2f): approx AUC=%.4f (%.2fs)  exact AUC=%.4f (%.2fs)\n",
				benchScale, aucApprox, tApprox.Seconds(), aucExact, tExact.Seconds())
		}
	}
}

// BenchmarkAblationFactorizer compares BKSVD against plain randomized
// subspace iteration as Algorithm 1's factorizer.
func BenchmarkAblationFactorizer(b *testing.B) {
	_, split := ablationSplit(b)
	for i := 0; i < b.N; i++ {
		opt := core.DefaultOptions()
		opt.Dim = 64
		aucBK, tBK := ablationAUC(b, split, opt)
		opt.SubspaceIteration = true
		aucSI, tSI := ablationAUC(b, split, opt)
		if i == 0 {
			fmt.Printf("\nablation factorizer (wiki-sim ×%.2f): BKSVD AUC=%.4f (%.2fs)  subspace AUC=%.4f (%.2fs)\n",
				benchScale, aucBK, tBK.Seconds(), aucSI, tSI.Seconds())
		}
	}
}

// BenchmarkAblationWeightTargets compares degree-targeted reweighting
// (Eq. 5) against uniform targets, isolating the value of degree
// information in the objective.
func BenchmarkAblationWeightTargets(b *testing.B) {
	g, split := ablationSplit(b)
	opt := core.DefaultOptions()
	opt.Dim = 64
	for i := 0; i < b.N; i++ {
		base, err := core.ApproxPPR(split.Train, opt)
		if err != nil {
			b.Fatal(err)
		}
		apply := func(fw, bw []float64) float64 {
			emb := &core.Embedding{X: base.X.Clone(), Y: base.Y.Clone()}
			for v := 0; v < split.Train.N; v++ {
				emb.X.ScaleRow(v, fw[v])
				emb.Y.ScaleRow(v, bw[v])
			}
			auc, err := eval.LinkPredictionAUC(emb, split)
			if err != nil {
				b.Fatal(err)
			}
			return auc
		}
		fwDeg, bwDeg, err := core.LearnWeights(split.Train, base, opt)
		if err != nil {
			b.Fatal(err)
		}
		uniformIn := make([]float64, g.N)
		uniformOut := make([]float64, g.N)
		avg := float64(2*split.Train.NumEdges) / float64(g.N)
		for v := range uniformIn {
			uniformIn[v] = avg
			uniformOut[v] = avg
		}
		fwUni, bwUni, err := core.LearnWeightsWithTargets(base, uniformIn, uniformOut, opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\nablation weight targets (wiki-sim ×%.2f): degree AUC=%.4f  uniform AUC=%.4f  none AUC=%.4f\n",
				benchScale, apply(fwDeg, bwDeg), apply(fwUni, bwUni), mustAUC(b, base, split))
		}
	}
}

func mustAUC(b *testing.B, s eval.Scorer, split *eval.LinkPredSplit) float64 {
	b.Helper()
	auc, err := eval.LinkPredictionAUC(s, split)
	if err != nil {
		b.Fatal(err)
	}
	return auc
}

// --- Serving backend benchmarks (BuildIndex) -----------------------------

// The TopK benchmarks compare the three Searcher backends on one serving
// fixture: n=100k nodes, k'=64 dimensions, with a heavy-tailed backward
// norm profile (‖Y_v‖ ∝ rank^-0.5) mirroring what NRP's degree-targeted
// reweighting produces on power-law graphs — the regime the norm-pruned
// backend is designed for. Run with:
//
//	go test -bench=TopK -benchtime=1x
//
// Each run appends its measurements to BENCH_topk.json (via TestMain).
const (
	servingN   = 100_000
	servingDim = 64
	servingK   = 10
)

var (
	servingOnce sync.Once
	servingFix  *core.Embedding
)

func servingEmbedding() *core.Embedding {
	servingOnce.Do(func() {
		rng := rand.New(rand.NewSource(42))
		emb := &core.Embedding{
			X: matrix.GaussianDense(servingN, servingDim, rng),
			Y: matrix.GaussianDense(servingN, servingDim, rng),
		}
		for v, rank := range rng.Perm(servingN) {
			emb.Y.ScaleRow(v, math.Pow(1+float64(rank), -0.5))
		}
		servingFix = emb
	})
	return servingFix
}

type topkBenchRecord struct {
	Name    string  `json:"name"`
	Backend string  `json:"backend"`
	N       int     `json:"n"`
	Dim     int     `json:"dim"`
	K       int     `json:"k"`
	NsPerOp float64 `json:"ns_per_op"`
	QPS     float64 `json:"qps"`
}

var (
	topkBenchMu      sync.Mutex
	topkBenchRecords = map[string]topkBenchRecord{}
)

// recordTopKBench keeps the latest (largest-b.N) measurement per
// benchmark name; TestMain writes them out at exit.
func recordTopKBench(name string, backend Backend, nsPerOp float64) {
	topkBenchMu.Lock()
	defer topkBenchMu.Unlock()
	topkBenchRecords[name] = topkBenchRecord{
		Name: name, Backend: backend.String(),
		N: servingN, Dim: servingDim, K: servingK,
		NsPerOp: nsPerOp, QPS: 1e9 / nsPerOp,
	}
}

// hnswBenchStats is the "hnsw" object of BENCH_topk.json: the accuracy
// and speedup contract of the ANN backend, gated by internal/benchgate
// (recall with 0.01 tolerance, speedup as an ordinary relative metric).
// SpeedupVsPruned is the batch-mode QPS ratio: both batch benchmarks
// parallelize across queries identically, so the ratio is thread-count
// invariant — unlike single-query mode, where the pruned scan fans out
// across shards but a graph walk cannot.
type hnswBenchStats struct {
	RecallAt10      float64 `json:"recall_at_10"`
	SpeedupVsPruned float64 `json:"speedup_vs_pruned"`
	M               int     `json:"m"`
	EfConstruction  int     `json:"ef_construction"`
	EfSearch        int     `json:"ef_search"`
	SeedRows        int     `json:"seed_rows"`
	Rerank          int     `json:"rerank"`
	Quantized       bool    `json:"quantized"`
	BuildMs         float64 `json:"build_ms"`
}

var hnswBenchRecorded *hnswBenchStats // guarded by topkBenchMu

func writeTopKBenchRecords() error {
	topkBenchMu.Lock()
	defer topkBenchMu.Unlock()
	if len(topkBenchRecords) == 0 {
		return nil
	}
	records := make([]topkBenchRecord, 0, len(topkBenchRecords))
	for _, name := range []string{"TopKExact", "TopKQuantized", "TopKPruned", "TopKHNSW",
		"TopKBatchExact", "TopKBatchQuantized", "TopKBatchPruned", "TopKBatchHNSW"} {
		if r, ok := topkBenchRecords[name]; ok {
			records = append(records, r)
		}
	}
	out := map[string]any{"benchmarks": records}
	if hnswBenchRecorded != nil {
		st := *hnswBenchRecorded
		pruned, okP := topkBenchRecords["TopKBatchPruned"]
		hnsw, okH := topkBenchRecords["TopKBatchHNSW"]
		if okP && okH && pruned.NsPerOp > 0 {
			st.SpeedupVsPruned = pruned.NsPerOp / hnsw.NsPerOp
		}
		out["hnsw"] = st
	}
	f, err := os.Create("BENCH_topk.json")
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// benchmarkTopK measures single-query latency: one query at a time, each
// fanned out across all shards.
func benchmarkTopK(b *testing.B, name string, backend Backend) {
	s, err := nrpBuildIndex(backend)
	if err != nil {
		b.Fatal(err)
	}
	benchmarkTopKWith(b, name, backend, s)
}

func benchmarkTopKWith(b *testing.B, name string, backend Backend, s Searcher) {
	rng := rand.New(rand.NewSource(7))
	us := make([]int, 256)
	for i := range us {
		us[i] = rng.Intn(servingN)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.TopK(ctx, us[i%len(us)], servingK); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	recordTopKBench(name, backend, float64(b.Elapsed().Nanoseconds())/float64(b.N))
}

// benchmarkTopKBatch measures throughput mode: TopKMany over 64 sources,
// parallelized across queries. The recorded ns/op is per query.
func benchmarkTopKBatch(b *testing.B, name string, backend Backend) {
	s, err := nrpBuildIndex(backend)
	if err != nil {
		b.Fatal(err)
	}
	benchmarkTopKBatchWith(b, name, backend, s)
}

func benchmarkTopKBatchWith(b *testing.B, name string, backend Backend, s Searcher) {
	rng := rand.New(rand.NewSource(7))
	const batch = 64
	us := make([]int, batch)
	for i := range us {
		us[i] = rng.Intn(servingN)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.TopKMany(ctx, us, servingK); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// Normalize to per-query so the batch records compare directly with
	// the single-query ones.
	recordTopKBench(name, backend, float64(b.Elapsed().Nanoseconds())/float64(b.N*batch))
}

// nrpBuildIndex builds the benchmark Searcher (bench_test lives in
// package nrp, so BuildIndex is in scope; the wrapper keeps the fixture
// choice in one place).
func nrpBuildIndex(backend Backend) (Searcher, error) {
	return BuildIndex(servingEmbedding(), WithBackend(backend))
}

func BenchmarkTopKExact(b *testing.B)     { benchmarkTopK(b, "TopKExact", BackendExact) }
func BenchmarkTopKQuantized(b *testing.B) { benchmarkTopK(b, "TopKQuantized", BackendQuantized) }
func BenchmarkTopKPruned(b *testing.B)    { benchmarkTopK(b, "TopKPruned", BackendPruned) }

func BenchmarkTopKBatchExact(b *testing.B) { benchmarkTopKBatch(b, "TopKBatchExact", BackendExact) }
func BenchmarkTopKBatchQuantized(b *testing.B) {
	benchmarkTopKBatch(b, "TopKBatchQuantized", BackendQuantized)
}
func BenchmarkTopKBatchPruned(b *testing.B) { benchmarkTopKBatch(b, "TopKBatchPruned", BackendPruned) }

// --- HNSW serving benchmarks ---------------------------------------------

// The HNSW benchmark configuration: quantized coarse stage with a narrow
// beam over a sparse (M=8) graph, the layer-0 beam pre-seeded with the
// 128 highest-norm rows. Tuned on the serving fixture so recall@10 stays
// ≥ 0.95 (hard enforced below — the benchmark fails, not just records,
// when accuracy drops) while single-query work is sublinear in n: the
// norm seeds cover the hub mass every top-k answer shares, so a very
// narrow beam only has to recover the query-specific tail.
const (
	hnswBenchM        = 8
	hnswBenchEfSearch = 12
	hnswBenchSeedRows = 128
	hnswBenchRerank   = 2
)

var (
	hnswBenchOnce    sync.Once
	hnswBenchIdx     Searcher
	hnswBenchErr     error
	hnswBenchBuildMs float64
)

// hnswBenchIndex builds (once) the HNSW index both HNSW benchmarks share
// — construction over 100k rows is far too expensive to repeat per
// benchmark invocation.
func hnswBenchIndex() (Searcher, error) {
	hnswBenchOnce.Do(func() {
		start := time.Now()
		hnswBenchIdx, hnswBenchErr = BuildIndex(servingEmbedding(),
			WithBackend(BackendHNSW), WithHNSWQuantized(true),
			WithHNSWM(hnswBenchM), WithEfSearch(hnswBenchEfSearch),
			WithHNSWSeedRows(hnswBenchSeedRows), WithRerank(hnswBenchRerank))
		hnswBenchBuildMs = float64(time.Since(start).Nanoseconds()) / 1e6
	})
	return hnswBenchIdx, hnswBenchErr
}

// hnswRecallGate measures recall@10 against the exact scan and fails the
// benchmark below 0.95 — the accuracy contract travels with the perf
// numbers into BENCH_topk.json, where benchgate holds the line in CI.
func hnswRecallGate(b *testing.B, s Searcher) {
	ctx := context.Background()
	exact := NewIndex(servingEmbedding())
	rng := rand.New(rand.NewSource(99))
	var hits, total float64
	for q := 0; q < 100; q++ {
		u := rng.Intn(servingN)
		want, err := exact.TopK(ctx, u, servingK)
		if err != nil {
			b.Fatal(err)
		}
		got, err := s.TopK(ctx, u, servingK)
		if err != nil {
			b.Fatal(err)
		}
		in := make(map[int]bool, len(want))
		for _, nb := range want {
			in[nb.Node] = true
		}
		for _, nb := range got {
			if in[nb.Node] {
				hits++
			}
		}
		total += float64(len(want))
	}
	recall := hits / total
	if recall < 0.95 {
		b.Fatalf("hnsw recall@%d = %.4f < 0.95 (ef=%d rerank=%d)",
			servingK, recall, hnswBenchEfSearch, hnswBenchRerank)
	}
	b.Logf("hnsw recall@%d = %.4f", servingK, recall)
	topkBenchMu.Lock()
	hnswBenchRecorded = &hnswBenchStats{
		RecallAt10:     recall,
		M:              hnswBenchM,
		EfConstruction: ann.DefaultEfConstruction,
		EfSearch:       hnswBenchEfSearch,
		SeedRows:       hnswBenchSeedRows,
		Rerank:         hnswBenchRerank,
		Quantized:      true,
		BuildMs:        hnswBenchBuildMs,
	}
	topkBenchMu.Unlock()
}

func BenchmarkTopKHNSW(b *testing.B) {
	s, err := hnswBenchIndex()
	if err != nil {
		b.Fatal(err)
	}
	hnswRecallGate(b, s)
	benchmarkTopKWith(b, "TopKHNSW", BackendHNSW, s)
}

func BenchmarkTopKBatchHNSW(b *testing.B) {
	s, err := hnswBenchIndex()
	if err != nil {
		b.Fatal(err)
	}
	benchmarkTopKBatchWith(b, "TopKBatchHNSW", BackendHNSW, s)
}

// --- Dynamic-graph refresh benchmark -------------------------------------

// BenchmarkDynamicRefresh is the evolving-graph serving benchmark: a
// 100k-node SBM grows by a batch of triadic-closure edges, and the
// incrementally refreshed embedding is raced against a from-scratch
// re-embed of the updated graph. Both are scored on link prediction over
// a held-out set of further future edges; the reproduction target is an
// incremental refresh ≥5× faster than the full re-embed at AUC within
// 0.01. One iteration measures both paths; the record lands in
// BENCH_dynamic.json via TestMain. Run with:
//
//	go test -run '^$' -bench BenchmarkDynamicRefresh -benchtime 1x
const (
	dynBenchN       = 100_000
	dynBenchM       = 500_000
	dynBenchDim     = 32
	dynBenchUpdates = 1000 // applied batch; an equal batch is held out
)

type dynamicBenchRecord struct {
	N              int     `json:"n"`
	M              int     `json:"m"`
	Dim            int     `json:"dim"`
	Updates        int     `json:"updates"`
	TouchedNodes   int     `json:"touched_nodes"`
	PushMass       float64 `json:"push_mass"`
	ResidualMass   float64 `json:"residual_mass"`
	IncrementalMs  float64 `json:"incremental_ms"`
	FullMs         float64 `json:"full_ms"`
	Speedup        float64 `json:"speedup"`
	AUCStale       float64 `json:"auc_stale"`
	AUCIncremental float64 `json:"auc_incremental"`
	AUCFull        float64 `json:"auc_full"`
}

var (
	dynamicBenchMu  sync.Mutex
	dynamicBenchRec *dynamicBenchRecord
)

func writeDynamicBenchRecord() error {
	dynamicBenchMu.Lock()
	defer dynamicBenchMu.Unlock()
	if dynamicBenchRec == nil {
		return nil
	}
	f, err := os.Create("BENCH_dynamic.json")
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(dynamicBenchRec); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func BenchmarkDynamicRefresh(b *testing.B) {
	ctx := context.Background()
	base, future, err := graph.GenEvolving(graph.EvolvingConfig{
		Base: graph.SBMConfig{N: dynBenchN, M: dynBenchM, Communities: 50, Seed: 4},
		MNew: 2 * dynBenchUpdates,
		Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	arriving, heldOut := future[:dynBenchUpdates], future[dynBenchUpdates:]
	opt := core.DefaultOptions()
	opt.Dim = dynBenchDim

	auc := func(emb *core.Embedding, g *graph.Graph) float64 {
		rng := rand.New(rand.NewSource(77))
		neg, err := eval.SampleNonEdges(g, len(heldOut), rng)
		if err != nil {
			b.Fatal(err)
		}
		pos := make([]float64, len(heldOut))
		for i, e := range heldOut {
			pos[i] = emb.Score(int(e.U), int(e.V))
		}
		negS := make([]float64, len(neg))
		for i, e := range neg {
			negS[i] = emb.Score(int(e.U), int(e.V))
		}
		v, err := eval.AUC(pos, negS)
		if err != nil {
			b.Fatal(err)
		}
		return v
	}

	for i := 0; i < b.N; i++ {
		dyn, err := dynamic.New(ctx, base, opt, dynamic.Config{Policy: dynamic.PolicyIncremental})
		if err != nil {
			b.Fatal(err)
		}
		aucStale := auc(dyn.Embedding(), dyn.Graph())

		ups := make([]dynamic.EdgeUpdate, len(arriving))
		for j, e := range arriving {
			ups[j] = dynamic.EdgeUpdate{U: e.U, V: e.V, Op: dynamic.OpInsert}
		}
		incStart := time.Now()
		if _, err := dyn.ApplyUpdates(ctx, ups); err != nil {
			b.Fatal(err)
		}
		st, err := dyn.Refresh(ctx)
		if err != nil {
			b.Fatal(err)
		}
		incElapsed := time.Since(incStart)
		if st.Mode != dynamic.ModeIncremental {
			b.Fatalf("refresh mode %q, want incremental", st.Mode)
		}
		aucInc := auc(dyn.Embedding(), dyn.Graph())

		fullStart := time.Now()
		full, err := core.NRP(dyn.Graph(), opt)
		if err != nil {
			b.Fatal(err)
		}
		fullElapsed := time.Since(fullStart)
		aucFull := auc(full, dyn.Graph())

		if i == 0 {
			rec := &dynamicBenchRecord{
				N: dynBenchN, M: dynBenchM, Dim: dynBenchDim, Updates: len(arriving),
				TouchedNodes: st.TouchedNodes, PushMass: st.PushMass, ResidualMass: st.ResidualMass,
				IncrementalMs: float64(incElapsed.Microseconds()) / 1000,
				FullMs:        float64(fullElapsed.Microseconds()) / 1000,
				Speedup:       fullElapsed.Seconds() / incElapsed.Seconds(),
				AUCStale:      aucStale, AUCIncremental: aucInc, AUCFull: aucFull,
			}
			dynamicBenchMu.Lock()
			dynamicBenchRec = rec
			dynamicBenchMu.Unlock()
			fmt.Printf("\ndynamic refresh (n=%d, m=%d, %d updates): incremental %.0fms (touched %d)  full %.0fms  speedup %.1fx  AUC inc=%.4f full=%.4f stale=%.4f\n",
				dynBenchN, dynBenchM, len(arriving), rec.IncrementalMs, st.TouchedNodes,
				rec.FullMs, rec.Speedup, aucInc, aucFull, aucStale)
		}
	}
}

// --- Parallel end-to-end build benchmark ---------------------------------

// BenchmarkEmbedBuild races the full NRP build (BKSVD + PPR folding +
// reweighting) at 1 thread against all cores on a 100k-node SBM, and
// scores both embeddings on held-out link prediction to confirm the
// parallel engine changes wall time, not quality. The reproduction target
// on an 8-core host is a ≥4× build speedup with AUC within ±0.5%. One
// iteration measures both builds; the record lands in BENCH_build.json
// via TestMain. Run with:
//
//	go test -run '^$' -bench BenchmarkEmbedBuild -benchtime 1x
const (
	buildBenchN   = 100_000
	buildBenchM   = 500_000
	buildBenchDim = 32
)

type buildBenchRecord struct {
	N           int     `json:"n"`
	M           int     `json:"m"`
	Dim         int     `json:"dim"`
	Threads     int     `json:"threads"`
	SerialMs    float64 `json:"serial_ms"`
	ParallelMs  float64 `json:"parallel_ms"`
	Speedup     float64 `json:"speedup"`
	AUCSerial   float64 `json:"auc_serial"`
	AUCThreads  float64 `json:"auc_parallel"`
	ForaMs      float64 `json:"fora_ms"`
	ForaSpeedup float64 `json:"fora_speedup"`
	AUCFora     float64 `json:"auc_fora"`
}

var (
	buildBenchMu  sync.Mutex
	buildBenchRec *buildBenchRecord
)

func writeBuildBenchRecord() error {
	buildBenchMu.Lock()
	defer buildBenchMu.Unlock()
	if buildBenchRec == nil {
		return nil
	}
	f, err := os.Create("BENCH_build.json")
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(buildBenchRec); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func BenchmarkEmbedBuild(b *testing.B) {
	ctx := context.Background()
	g, err := graph.GenSBM(graph.SBMConfig{N: buildBenchN, M: buildBenchM, Communities: 50, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	split, err := eval.NewLinkPredSplit(g, 0.3, 42)
	if err != nil {
		b.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Dim = buildBenchDim
	threads := runtime.GOMAXPROCS(0)

	for i := 0; i < b.N; i++ {
		serialStart := time.Now()
		embSerial, _, err := core.NRPCtx(ctx, split.Train, opt, core.WithThreads(1))
		if err != nil {
			b.Fatal(err)
		}
		serialElapsed := time.Since(serialStart)

		parStart := time.Now()
		embPar, stats, err := core.NRPCtx(ctx, split.Train, opt, core.WithThreads(0))
		if err != nil {
			b.Fatal(err)
		}
		parElapsed := time.Since(parStart)

		foraStart := time.Now()
		embFora, _, err := core.NRPCtx(ctx, split.Train, opt,
			core.WithThreads(0), core.WithEstimator(core.EstimatorFORA))
		if err != nil {
			b.Fatal(err)
		}
		foraElapsed := time.Since(foraStart)

		aucSerial, err := eval.LinkPredictionAUC(embSerial, split)
		if err != nil {
			b.Fatal(err)
		}
		aucPar, err := eval.LinkPredictionAUC(embPar, split)
		if err != nil {
			b.Fatal(err)
		}
		aucFora, err := eval.LinkPredictionAUC(embFora, split)
		if err != nil {
			b.Fatal(err)
		}

		if i == 0 {
			rec := &buildBenchRecord{
				N: buildBenchN, M: buildBenchM, Dim: buildBenchDim, Threads: stats.Threads,
				SerialMs:   float64(serialElapsed.Microseconds()) / 1000,
				ParallelMs: float64(parElapsed.Microseconds()) / 1000,
				Speedup:    serialElapsed.Seconds() / parElapsed.Seconds(),
				AUCSerial:  aucSerial, AUCThreads: aucPar,
				ForaMs:      float64(foraElapsed.Microseconds()) / 1000,
				ForaSpeedup: parElapsed.Seconds() / foraElapsed.Seconds(),
				AUCFora:     aucFora,
			}
			buildBenchMu.Lock()
			buildBenchRec = rec
			buildBenchMu.Unlock()
			fmt.Printf("\nembed build (n=%d, m=%d, k=%d): 1 thread %.0fms  %d threads %.0fms  speedup %.1fx  fora %.0fms (%.1fx vs parallel push)  AUC serial=%.4f parallel=%.4f fora=%.4f\n",
				buildBenchN, buildBenchM, buildBenchDim, rec.SerialMs, threads, rec.ParallelMs,
				rec.Speedup, rec.ForaMs, rec.ForaSpeedup, aucSerial, aucPar, aucFora)
		}
	}
}

// --- Ingestion benchmark -------------------------------------------------

// BenchmarkIngest races the four ways a graph gets into memory on an
// ~800k-edge SBM: the serial text parser, the chunked parallel parser
// (bit-identical output, asserted), the fully-verified NRPG heap load,
// and the zero-copy NRPG mmap load. The reproduction target is the
// paper's "massive graphs" posture: parallel parse well ahead of serial,
// and the mmap snapshot boot ≥10× faster than any text parse. One
// iteration measures all four; the record lands in BENCH_ingest.json via
// TestMain and feeds the bench-gate CI job. Run with:
//
//	go test -run '^$' -bench BenchmarkIngest -benchtime 1x
const (
	ingestBenchN = 200_000
	ingestBenchM = 800_000
)

type ingestBenchRecord struct {
	N               int     `json:"n"`
	M               int     `json:"m"`
	Threads         int     `json:"threads"`
	TextBytes       int64   `json:"text_bytes"`
	NRPGBytes       int64   `json:"nrpg_bytes"`
	SerialParseMs   float64 `json:"serial_parse_ms"`
	ParallelParseMs float64 `json:"parallel_parse_ms"`
	HeapLoadMs      float64 `json:"heap_load_ms"`
	MmapLoadMs      float64 `json:"mmap_load_ms"`
	ParallelSpeedup float64 `json:"parallel_speedup"`
	MmapSpeedup     float64 `json:"mmap_vs_text_speedup"`
}

var (
	ingestBenchMu  sync.Mutex
	ingestBenchRec *ingestBenchRecord
)

func writeIngestBenchRecord() error {
	ingestBenchMu.Lock()
	defer ingestBenchMu.Unlock()
	if ingestBenchRec == nil {
		return nil
	}
	f, err := os.Create("BENCH_ingest.json")
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(ingestBenchRec); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func BenchmarkIngest(b *testing.B) {
	g, err := graph.GenSBM(graph.SBMConfig{N: ingestBenchN, M: ingestBenchM, Communities: 50, Seed: 21})
	if err != nil {
		b.Fatal(err)
	}
	var text bytes.Buffer
	if err := graph.WriteEdgeList(&text, g); err != nil {
		b.Fatal(err)
	}
	snapPath := filepath.Join(b.TempDir(), "ingest.nrpg")
	sf, err := os.Create(snapPath)
	if err != nil {
		b.Fatal(err)
	}
	if err := gio.Save(sf, g, nil); err != nil {
		b.Fatal(err)
	}
	if err := sf.Close(); err != nil {
		b.Fatal(err)
	}
	st, err := os.Stat(snapPath)
	if err != nil {
		b.Fatal(err)
	}
	threads := runtime.GOMAXPROCS(0)

	for i := 0; i < b.N; i++ {
		serialStart := time.Now()
		serial, err := graph.ReadEdgeList(bytes.NewReader(text.Bytes()), false, 0)
		if err != nil {
			b.Fatal(err)
		}
		serialElapsed := time.Since(serialStart)

		parStart := time.Now()
		parallel, err := gio.ParseEdgeList(text.Bytes(), false, 0, par.New(0))
		if err != nil {
			b.Fatal(err)
		}
		parElapsed := time.Since(parStart)
		if parallel.NumEdges != serial.NumEdges || parallel.Adj.NNZ() != serial.Adj.NNZ() {
			b.Fatalf("parallel parse diverged: m=%d nnz=%d, want m=%d nnz=%d",
				parallel.NumEdges, parallel.Adj.NNZ(), serial.NumEdges, serial.Adj.NNZ())
		}
		for p, c := range serial.Adj.ColIdx {
			if parallel.Adj.ColIdx[p] != c {
				b.Fatalf("parallel parse diverged at entry %d", p)
			}
		}

		heapStart := time.Now()
		hf, err := os.Open(snapPath)
		if err != nil {
			b.Fatal(err)
		}
		heap, _, err := gio.Load(hf)
		hf.Close()
		if err != nil {
			b.Fatal(err)
		}
		heapElapsed := time.Since(heapStart)

		mmapStart := time.Now()
		mapped, _, closer, err := gio.LoadMmap(snapPath)
		if err != nil {
			b.Fatal(err)
		}
		mmapElapsed := time.Since(mmapStart)
		if mapped.NumEdges != g.NumEdges || heap.NumEdges != g.NumEdges {
			b.Fatalf("snapshot loads diverged: mmap m=%d heap m=%d, want %d",
				mapped.NumEdges, heap.NumEdges, g.NumEdges)
		}
		closer.Close()

		if i == 0 {
			rec := &ingestBenchRecord{
				N: g.N, M: g.NumEdges, Threads: threads,
				TextBytes: int64(text.Len()), NRPGBytes: st.Size(),
				SerialParseMs:   float64(serialElapsed.Microseconds()) / 1000,
				ParallelParseMs: float64(parElapsed.Microseconds()) / 1000,
				HeapLoadMs:      float64(heapElapsed.Microseconds()) / 1000,
				MmapLoadMs:      float64(mmapElapsed.Microseconds()) / 1000,
				ParallelSpeedup: serialElapsed.Seconds() / parElapsed.Seconds(),
				MmapSpeedup:     serialElapsed.Seconds() / mmapElapsed.Seconds(),
			}
			ingestBenchMu.Lock()
			ingestBenchRec = rec
			ingestBenchMu.Unlock()
			fmt.Printf("\ningest (n=%d, m=%d, %d threads): serial parse %.0fms  parallel parse %.0fms (%.1fx)  heap load %.0fms  mmap load %.2fms (%.0fx vs text)\n",
				g.N, g.NumEdges, threads, rec.SerialParseMs, rec.ParallelParseMs, rec.ParallelSpeedup,
				rec.HeapLoadMs, rec.MmapLoadMs, rec.MmapSpeedup)
		}
	}
}

// --- Online PPR query benchmark ------------------------------------------

// BenchmarkPPRQuery is the online serving benchmark of the FORA
// subsystem: 4-seed PPR queries on a 100k-node SBM at (ε=0.5, δ=1e-4),
// answered three ways — plain FORA (forward push + live walks), FORA+
// (push + walk-index lookups) and fully converged power iteration, the
// exact baseline. Every FORA estimate is checked against the
// power-iteration ground truth and the benchmark fails hard if the max
// relative error over guaranteed top-k nodes (π ≥ δ) exceeds ε. The
// reproduction target is FORA ≥10× faster than power iteration at ≤ ε
// error; the record lands in BENCH_ppr.json via TestMain and feeds the
// bench-gate CI job. Run with:
//
//	go test -run '^$' -bench BenchmarkPPRQuery -benchtime 1x
const (
	pprBenchN       = 100_000
	pprBenchM       = 500_000
	pprBenchSeeds   = 4
	pprBenchK       = 10
	pprBenchAlpha   = 0.15
	pprBenchEps     = 0.5
	pprBenchDelta   = 1e-3 // guarantee threshold; top-k scores of 4-seed queries sit well above it
	pprBenchPFail   = 0.01 // per-query failure probability, the usual serving setting
	pprBenchQueries = 8
	pprBenchWalks   = 16 // FORA+ index walks per node
)

type pprBenchRecord struct {
	N              int     `json:"n"`
	M              int     `json:"m"`
	Queries        int     `json:"queries"`
	SeedsPerQuery  int     `json:"seeds_per_query"`
	K              int     `json:"k"`
	Alpha          float64 `json:"alpha"`
	Epsilon        float64 `json:"epsilon"`
	Delta          float64 `json:"delta"`
	PFail          float64 `json:"p_fail"`
	PowerIters     int     `json:"power_iters"`
	WalksPerNode   int     `json:"walks_per_node"`
	ForaMs         float64 `json:"fora_ms"`      // per query
	ForaPlusMs     float64 `json:"fora_plus_ms"` // per query, walk index attached
	PowerMs        float64 `json:"power_ms"`     // per query
	SpeedupVsPower float64 `json:"speedup_vs_power"`
	IndexSpeedup   float64 `json:"index_speedup"`
	MaxRelErr      float64 `json:"max_rel_err"`
	CheckedScores  int     `json:"checked_scores"`
}

var (
	pprBenchMu  sync.Mutex
	pprBenchRec *pprBenchRecord
)

func writePPRBenchRecord() error {
	pprBenchMu.Lock()
	defer pprBenchMu.Unlock()
	if pprBenchRec == nil {
		return nil
	}
	f, err := os.Create("BENCH_ppr.json")
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(pprBenchRec); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func BenchmarkPPRQuery(b *testing.B) {
	ctx := context.Background()
	g, err := GenSBM(SBMConfig{N: pprBenchN, M: pprBenchM, Communities: 50, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	opts := []PPROption{WithAlpha(pprBenchAlpha), WithEpsilon(pprBenchEps),
		WithPPRDelta(pprBenchDelta), WithPPRFailureProb(pprBenchPFail)}
	eng, err := NewPPREngine(g, opts...)
	if err != nil {
		b.Fatal(err)
	}
	wi, err := BuildWalkIndex(ctx, g, pprBenchWalks, WithAlpha(pprBenchAlpha))
	if err != nil {
		b.Fatal(err)
	}
	fast, err := NewPPREngine(g, append(opts, WithWalkIndex(wi))...)
	if err != nil {
		b.Fatal(err)
	}

	// Distinct seeds per query: FORA dedupes its seed set while
	// MultiSource sums duplicate mass, so a collision would change the
	// ground truth, not just the estimate.
	rng := rand.New(rand.NewSource(17))
	queries := make([][]int, pprBenchQueries)
	for qi := range queries {
		seen := map[int]bool{}
		for len(queries[qi]) < pprBenchSeeds {
			if s := rng.Intn(pprBenchN); !seen[s] {
				seen[s] = true
				queries[qi] = append(queries[qi], s)
			}
		}
	}
	// Iterate the exact baseline until its truncation error (1−α)^L is
	// ≤1e-7, far below the ε·δ=2.5e-5 precision the guarantee is checked
	// at — "full" power iteration, not one matched to FORA's accuracy.
	powerIters := int(math.Ceil(math.Log(1e-7) / math.Log(1-pprBenchAlpha)))

	// Warm both engines: the first query builds the pooled O(n) workspace.
	if _, err := eng.PPR(ctx, queries[0], pprBenchK); err != nil {
		b.Fatal(err)
	}
	if _, err := fast.PPR(ctx, queries[0], pprBenchK); err != nil {
		b.Fatal(err)
	}

	runAll := func(e *PPREngine) ([]*PPRResult, time.Duration) {
		start := time.Now()
		out := make([]*PPRResult, len(queries))
		for qi, seeds := range queries {
			r, err := e.PPR(ctx, seeds, pprBenchK)
			if err != nil {
				b.Fatal(err)
			}
			out[qi] = r
		}
		return out, time.Since(start)
	}

	for i := 0; i < b.N; i++ {
		foraRes, foraElapsed := runAll(eng)
		plusRes, plusElapsed := runAll(fast)
		if !plusRes[0].Stats.UsedIndex {
			b.Fatal("FORA+ engine did not use the walk index")
		}

		powerStart := time.Now()
		truths := make([][]float64, len(queries))
		for qi, seeds := range queries {
			s32 := make([]int32, len(seeds))
			for j, s := range seeds {
				s32[j] = int32(s)
			}
			truth, err := ppr.MultiSource(g, s32, pprBenchAlpha, powerIters)
			if err != nil {
				b.Fatal(err)
			}
			truths[qi] = truth
		}
		powerElapsed := time.Since(powerStart)

		maxRelErr, checked := 0.0, 0
		for qi := range queries {
			for _, res := range [2][]*PPRResult{foraRes, plusRes} {
				for _, s := range res[qi].Scores {
					truth := truths[qi][s.Node]
					if truth < pprBenchDelta {
						continue // below the guarantee threshold
					}
					checked++
					if rel := math.Abs(s.Score-truth) / truth; rel > maxRelErr {
						maxRelErr = rel
					}
				}
			}
		}
		if checked == 0 {
			b.Fatal("no top-k score reached the δ guarantee threshold; raise δ or k")
		}
		if maxRelErr > pprBenchEps {
			b.Fatalf("max relative error %.3f exceeds ε=%.2f on guaranteed nodes", maxRelErr, pprBenchEps)
		}

		if i == 0 {
			q := float64(len(queries))
			rec := &pprBenchRecord{
				N: pprBenchN, M: pprBenchM, Queries: pprBenchQueries, SeedsPerQuery: pprBenchSeeds,
				K: pprBenchK, Alpha: pprBenchAlpha, Epsilon: pprBenchEps,
				Delta: pprBenchDelta, PFail: pprBenchPFail,
				PowerIters: powerIters, WalksPerNode: pprBenchWalks,
				ForaMs:         float64(foraElapsed.Microseconds()) / 1000 / q,
				ForaPlusMs:     float64(plusElapsed.Microseconds()) / 1000 / q,
				PowerMs:        float64(powerElapsed.Microseconds()) / 1000 / q,
				SpeedupVsPower: powerElapsed.Seconds() / foraElapsed.Seconds(),
				IndexSpeedup:   foraElapsed.Seconds() / plusElapsed.Seconds(),
				MaxRelErr:      maxRelErr, CheckedScores: checked,
			}
			pprBenchMu.Lock()
			pprBenchRec = rec
			pprBenchMu.Unlock()
			fmt.Printf("\nppr query (n=%d, m=%d, %d seeds, ε=%.2g, δ=%.2g): fora %.1fms/q  fora+ %.1fms/q (%.2fx)  power(%d iters) %.0fms/q  speedup %.1fx  max rel err %.3f (%d scores)\n",
				pprBenchN, pprBenchM, pprBenchSeeds, pprBenchEps, pprBenchDelta,
				rec.ForaMs, rec.ForaPlusMs, rec.IndexSpeedup, powerIters, rec.PowerMs,
				rec.SpeedupVsPower, maxRelErr, checked)
		}
	}
}

// --- Kernel micro-benchmarks ---------------------------------------------

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	g, err := graph.GenSBM(graph.SBMConfig{N: 20000, M: 200000, Communities: 20, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkKernelSparseMulDense measures the CSR × dense product at the
// shape Algorithm 1's iterations use (m=200k, k′=64).
func BenchmarkKernelSparseMulDense(b *testing.B) {
	g := benchGraph(b)
	p := g.Transition()
	rng := rand.New(rand.NewSource(1))
	x := matrix.GaussianDense(g.N, 64, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.MulDense(x)
	}
}

// BenchmarkKernelBKSVD measures the randomized factorization alone.
func BenchmarkKernelBKSVD(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svd.BKSVD(g.Adj, svd.Options{Rank: 32, Epsilon: 0.2, Rng: rand.New(rand.NewSource(1))}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelApproxPPR measures Algorithm 1 end to end.
func BenchmarkKernelApproxPPR(b *testing.B) {
	g := benchGraph(b)
	opt := core.DefaultOptions()
	opt.Dim = 64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ApproxPPR(g, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelReweighting measures the ℓ₂ coordinate-descent epochs of
// Algorithm 3 (lines 3-7) in isolation.
func BenchmarkKernelReweighting(b *testing.B) {
	g := benchGraph(b)
	opt := core.DefaultOptions()
	opt.Dim = 64
	emb, err := core.ApproxPPR(g, opt)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.LearnWeights(g, emb, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelForwardPush measures the push primitive underlying STRAP.
func BenchmarkKernelForwardPush(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ppr.ForwardPush(g, i%g.N, 0.15, 1e-5)
	}
}
