package nrp

import (
	"context"
	"errors"
	"math"
	"testing"

	"github.com/nrp-embed/nrp/internal/eval"
)

func TestParseEstimatorTable(t *testing.T) {
	for _, tc := range []struct {
		in      string
		want    Estimator
		wantErr error
	}{
		{"", EstimatorPush, nil},
		{"push", EstimatorPush, nil},
		{"fora", EstimatorFORA, nil},
		{"PUSH", "", ErrInvalidEstimator},
		{"fora+", "", ErrInvalidEstimator},
		{"backward", "", ErrInvalidEstimator},
	} {
		got, err := ParseEstimator(tc.in)
		if tc.wantErr != nil {
			if !errors.Is(err, tc.wantErr) {
				t.Errorf("ParseEstimator(%q) err = %v, want %v", tc.in, err, tc.wantErr)
			}
			continue
		}
		if err != nil || got != tc.want {
			t.Errorf("ParseEstimator(%q) = (%q, %v), want (%q, nil)", tc.in, got, err, tc.want)
		}
	}
}

// TestEstimatorOptionValidation table-tests the typed sentinels: unknown
// names and out-of-range knobs fail with ErrInvalidEstimator, push runs
// carrying FORA-only knobs fail with ErrEstimatorOptionConflict, and the
// errors surface through the public Embed path before any work runs.
func TestEstimatorOptionValidation(t *testing.T) {
	g, err := GenSBM(SBMConfig{N: 60, M: 240, Communities: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Dim = 8
	for _, tc := range []struct {
		name string
		opts []RunOption
		want error
	}{
		{"unknown estimator", []RunOption{WithEstimator("bogus")}, ErrInvalidEstimator},
		{"negative topk", []RunOption{WithEstimator(EstimatorFORA), WithEstimatorTopK(-1)}, ErrInvalidEstimator},
		{"negative epsilon", []RunOption{WithEstimator(EstimatorFORA), WithEstimatorEpsilon(-0.5)}, ErrInvalidEstimator},
		{"negative walks", []RunOption{WithEstimator(EstimatorFORA), WithEstimatorWalks(-4)}, ErrInvalidEstimator},
		{"topk on push", []RunOption{WithEstimatorTopK(16)}, ErrEstimatorOptionConflict},
		{"epsilon on push", []RunOption{WithEstimator(EstimatorPush), WithEstimatorEpsilon(0.3)}, ErrEstimatorOptionConflict},
		{"walks on push", []RunOption{WithEstimatorWalks(8)}, ErrEstimatorOptionConflict},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := EmbedCtx(context.Background(), g, opt, tc.opts...)
			if !errors.Is(err, tc.want) {
				t.Fatalf("EmbedCtx err = %v, want %v", err, tc.want)
			}
		})
	}
	// Options compose in any order: the estimator named after its knobs
	// still validates cleanly.
	if _, _, err := EmbedCtx(context.Background(), g, opt,
		WithEstimatorTopK(16), WithEstimator(EstimatorFORA)); err != nil {
		t.Fatalf("knob-before-estimator order rejected: %v", err)
	}
}

// TestForaPushAUCParity is the quality-parity property of the acceptance
// criteria at test scale: on a held-out link-prediction split, the FORA
// estimator's embedding must score within one AUC point of the push
// build. Both builds are deterministic for the fixed seeds, so this is a
// stable bound, not a flaky tolerance.
func TestForaPushAUCParity(t *testing.T) {
	g, err := GenSBM(SBMConfig{N: 4000, M: 20000, Communities: 16, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	split, err := eval.NewLinkPredSplit(g, 0.3, 42)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Dim = 32

	embPush, _, err := EmbedCtx(context.Background(), split.Train, opt)
	if err != nil {
		t.Fatal(err)
	}
	// The FORA defaults are tuned at the 100k-node bench fixture, whose
	// rows carry ~5× the graph mass of this test-scale one; a 4k-node
	// graph needs denser per-row sampling (more stored walks) and one
	// extra factorizer iteration to reach the same parity the bench gate
	// holds the defaults to.
	foraOpt := opt
	foraOpt.KrylovIters = 3
	embFora, _, err := EmbedCtx(context.Background(), split.Train, foraOpt,
		WithEstimator(EstimatorFORA), WithEstimatorWalks(16))
	if err != nil {
		t.Fatal(err)
	}
	aucPush, err := eval.LinkPredictionAUC(embPush, split)
	if err != nil {
		t.Fatal(err)
	}
	aucFora, err := eval.LinkPredictionAUC(embFora, split)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("AUC push=%.4f fora=%.4f", aucPush, aucFora)
	if aucPush < 0.6 {
		t.Fatalf("push baseline AUC %.4f suspiciously low — fixture broken", aucPush)
	}
	if diff := aucPush - aucFora; diff > 0.01 {
		t.Fatalf("FORA AUC %.4f trails push %.4f by %.4f, want ≤ 0.01", aucFora, aucPush, diff)
	}
}

// TestDynamicWalkInvalidation wires the three public pieces the serving
// stack composes — a PPR engine's maintained walk index registered as a
// DynamicEmbedding's WalkInvalidator — and checks updates flow through:
// ApplyUpdates marks the touched rows stale, queries on the updated
// snapshot still answer (stale starts simulate live walks), and the lazy
// repair path drains the queue.
func TestDynamicWalkInvalidation(t *testing.T) {
	ctx := context.Background()
	g, err := GenSBM(SBMConfig{N: 400, M: 2000, Communities: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Dim = 8
	dyn, err := NewDynamicEmbedding(ctx, g, opt, DynamicConfig{})
	if err != nil {
		t.Fatal(err)
	}
	wi, err := BuildWalkIndex(ctx, g, 16)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := NewPPREngine(g, WithWalkIndex(wi))
	if err != nil {
		t.Fatal(err)
	}
	idx := pe.Index()
	if idx == nil {
		t.Fatal("engine lost its walk index")
	}
	idx.EnableMaintenance()
	var inv WalkInvalidator = idx // the alias admits the maintained index
	dyn.SetWalkInvalidator(inv)

	ups := []EdgeUpdate{
		{U: 0, V: 9, Op: UpdateInsert},
		{U: 5, V: 210, Op: UpdateInsert},
		{U: g.Edges()[0].U, V: g.Edges()[0].V, Op: UpdateRemove},
	}
	applied, err := dyn.ApplyUpdates(ctx, ups)
	if err != nil {
		t.Fatal(err)
	}
	if applied == 0 {
		t.Fatal("no updates applied")
	}
	c := pe.Counters()
	if c.WalkIndex.Invalidated == 0 {
		t.Fatalf("ApplyUpdates invalidated no walk-index rows: %+v", c)
	}
	if c.WalkIndexStalePending == 0 {
		t.Fatalf("no stale rows pending after updates: %+v", c)
	}

	// Queries on the updated snapshot stay correct and drive lazy repair.
	for i := 0; i < 20; i++ {
		res, err := pe.Query(ctx, PPRQuery{Seeds: []int{0, 5}, K: 10, Graph: dyn.Graph()})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Scores) == 0 {
			t.Fatal("empty PPR result")
		}
		for _, s := range res.Scores {
			if math.IsNaN(s.Score) || s.Score <= 0 {
				t.Fatalf("bad score %+v", s)
			}
		}
	}
	c = pe.Counters()
	if c.WalksRun == 0 {
		t.Fatal("no walks recorded by the engine counters")
	}
	if c.WalkIndex.Repaired == 0 && c.WalkIndexStalePending > 0 {
		t.Fatalf("stale rows never repaired by the lazy query path: %+v", c)
	}
}
