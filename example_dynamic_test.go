package nrp_test

import (
	"context"
	"fmt"
	"log"

	"github.com/nrp-embed/nrp"
)

// ExampleDynamicEmbedding maintains an embedding over an evolving graph:
// edges stream in as batched updates, the incremental policy patches only
// the touched rows, and a LiveIndex swaps the serving index with zero
// downtime.
func ExampleDynamicEmbedding() {
	ctx := context.Background()
	g, err := nrp.GenSBM(nrp.SBMConfig{N: 300, M: 1800, Communities: 4, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	opt := nrp.DefaultOptions()
	opt.Dim = 16

	dyn, err := nrp.NewDynamicEmbedding(ctx, g, opt, nrp.DynamicConfig{
		Policy: nrp.RefreshIncremental,
	})
	if err != nil {
		log.Fatal(err)
	}
	live, err := nrp.NewLiveIndex(dyn, nrp.WithBackend(nrp.BackendExact))
	if err != nil {
		log.Fatal(err)
	}

	// A batch of edge arrivals (and one departure) hits the graph.
	applied, err := live.ApplyUpdates(ctx, []nrp.EdgeUpdate{
		{U: 0, V: 299, Op: nrp.UpdateInsert},
		{U: 1, V: 298, Op: nrp.UpdateInsert},
		{U: 0, V: 299, Op: nrp.UpdateInsert}, // duplicate: skipped
		{U: 2, V: 297, Op: nrp.UpdateRemove}, // absent: skipped
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("applied %d of 4 updates, %d pending\n", applied, live.Pending())

	// Refresh patches the touched rows and swaps the serving index;
	// queries running meanwhile finish on the old snapshot.
	stats, err := live.Refresh(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("refresh mode=%s touched=%d pending=%d\n", stats.Mode, stats.TouchedNodes, live.Pending())

	if _, err := live.TopK(ctx, 0, 5); err != nil {
		log.Fatal(err)
	}
	fmt.Println("serving on the refreshed index")
	// Output:
	// applied 2 of 4 updates, 2 pending
	// refresh mode=incremental touched=8 pending=0
	// serving on the refreshed index
}
