package nrp

import (
	"context"
	"fmt"

	"github.com/nrp-embed/nrp/internal/dynamic"
)

// EdgeUpdate is one edge insertion or removal applied to a
// DynamicEmbedding.
type EdgeUpdate = dynamic.EdgeUpdate

// UpdateOp distinguishes edge insertion from removal in an EdgeUpdate.
type UpdateOp = dynamic.Op

// Edge update operations.
const (
	// UpdateInsert adds the edge to the graph.
	UpdateInsert = dynamic.OpInsert
	// UpdateRemove deletes the edge from the graph.
	UpdateRemove = dynamic.OpRemove
)

// RefreshPolicy selects how DynamicEmbedding.Refresh brings the embedding
// back in sync with the updated graph.
type RefreshPolicy = dynamic.Policy

// Refresh policies.
const (
	// RefreshFull always re-runs the whole pipeline, warm-starting the
	// factorizer from the previous run's singular factors.
	RefreshFull = dynamic.PolicyFull
	// RefreshIncremental patches only the rows of nodes whose
	// neighborhoods changed, using forward/backward push residual deltas,
	// and falls back to a (warm) full recompute when the accumulated
	// unexplained PPR mass exceeds the configured budget.
	RefreshIncremental = dynamic.PolicyIncremental
	// RefreshStaleness skips refreshing while the fraction of changed
	// arcs stays under the staleness threshold, then refreshes
	// incrementally.
	RefreshStaleness = dynamic.PolicyStaleness
)

// ParseRefreshPolicy resolves a policy name ("full", "incremental",
// "staleness") as accepted by the CLI flags.
func ParseRefreshPolicy(s string) (RefreshPolicy, error) { return dynamic.ParsePolicy(s) }

// DynamicConfig tunes the refresh machinery of a DynamicEmbedding; the
// zero value takes sensible defaults (incremental policy, residual budget
// 0.05, staleness threshold 0.02, push rmax 1e-3, 2 warm Krylov
// iterations).
type DynamicConfig = dynamic.Config

// RefreshStats instruments one Refresh call: the mode taken (full,
// incremental or skipped), nodes touched, push and residual mass, and
// wall time.
type RefreshStats = dynamic.Stats

// Refresh modes reported in RefreshStats.Mode.
const (
	// RefreshedFull is a full pipeline recompute.
	RefreshedFull = dynamic.ModeFull
	// RefreshedIncremental patched only the touched rows.
	RefreshedIncremental = dynamic.ModeIncremental
	// RefreshedSkipped left the embedding untouched.
	RefreshedSkipped = dynamic.ModeSkipped
)

// WalkInvalidator receives the nodes whose out-neighborhoods changed in
// an applied update batch. Register one with
// DynamicEmbedding.SetWalkInvalidator to keep a FORA+ walk index honest
// under live updates — a maintained WalkIndex (see
// WalkIndex.EnableMaintenance) satisfies the interface.
type WalkInvalidator = dynamic.WalkInvalidator

// DynamicEmbedding maintains an NRP embedding under batched edge
// insertions and deletions — the paper's evolving-graph workload (VK and
// Digg snapshots, Table 4 / Fig 9) served live instead of re-embedded
// offline.
//
//	dyn, err := nrp.NewDynamicEmbedding(ctx, g, nrp.DefaultOptions(), nrp.DynamicConfig{})
//	dyn.ApplyUpdates(ctx, []nrp.EdgeUpdate{{U: 3, V: 14, Op: nrp.UpdateInsert}})
//	stats, err := dyn.Refresh(ctx)      // incremental by default
//	emb := dyn.Embedding()              // immutable snapshot
//
// All methods are safe for concurrent use. Readers always observe a
// consistent snapshot: updates and refreshes install fresh Graph and
// Embedding values instead of mutating the ones previously handed out.
// To serve queries over a DynamicEmbedding with zero-downtime index
// swaps, wrap it in a LiveIndex.
type DynamicEmbedding = dynamic.Engine

// NewDynamicEmbedding embeds g from scratch (the usual NRP pipeline) and
// returns a DynamicEmbedding maintaining that embedding under updates.
// Options are validated up front; run options (e.g. WithProgress) apply
// to the initial embed and to subsequent full refreshes started by this
// call only.
func NewDynamicEmbedding(ctx context.Context, g *Graph, opt Options, cfg DynamicConfig, opts ...RunOption) (*DynamicEmbedding, error) {
	if err := opt.Validate(); err != nil {
		return nil, fmt.Errorf("nrp: invalid options: %w", err)
	}
	return dynamic.New(ctx, g, opt, cfg, opts...)
}
